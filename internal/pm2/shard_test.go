package pm2

import (
	"fmt"
	"strings"
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// shardedRT builds a 2-cluster, 4-node machine sharded along its cluster
// boundaries (nodes 0,1 on shard 0; nodes 2,3 on shard 1).
func shardedRT(seed int64) *Runtime {
	cluster := madeleine.EvenClusters(4, 2)
	return NewRuntime(Config{
		Nodes:    4,
		Topology: madeleine.NewHierarchical(cluster, madeleine.BIPMyrinet, madeleine.TCPFastEthernet),
		Shards:   2,
		Seed:     seed,
	})
}

// runShardedRPC exercises synchronous cross-shard RPC: every node registers
// an "echo" service, and one client thread per node calls its cross-cluster
// peer several times. Returns a trace of call completions per node.
func runShardedRPC(t *testing.T, seed int64) ([]string, error) {
	t.Helper()
	rt := shardedRT(seed)
	for n := 0; n < 4; n++ {
		n := n
		rt.Node(n).Register("echo", true, func(h *Thread, arg interface{}) interface{} {
			h.Compute(sim.Micros(3))
			return arg.(int) * 10
		})
	}
	traces := make([]string, 4)
	for n := 0; n < 4; n++ {
		n := n
		rt.CreateThread(n, fmt.Sprintf("client%d", n), func(th *Thread) {
			var sb strings.Builder
			peer := (n + 2) % 4
			for i := 0; i < 5; i++ {
				got := th.Call(peer, "echo", n*100+i, 64, 64)
				fmt.Fprintf(&sb, "%v=%v;", th.Now(), got)
				if got.(int) != (n*100+i)*10 {
					t.Errorf("node %d call %d: got %v", n, i, got)
				}
			}
			traces[n] = sb.String()
		})
	}
	return traces, rt.Run()
}

// TestShardedRPCCompletes: synchronous RPC across the shard boundary works
// in both directions and repeated runs replay identically.
func TestShardedRPCCompletes(t *testing.T) {
	base, err := runShardedRPC(t, 42)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for trial := 0; trial < 3; trial++ {
		got, err := runShardedRPC(t, 42)
		if err != nil {
			t.Fatalf("trial %d Run: %v", trial, err)
		}
		for n := range got {
			if got[n] != base[n] {
				t.Fatalf("trial %d node %d trace diverged:\n%s\nvs\n%s", trial, n, got[n], base[n])
			}
		}
	}
}

// TestShardedVectorRPC: a multi-part vector invocation crossing the
// backbone fans out on the destination shard and coalesces one reply.
func TestShardedVectorRPC(t *testing.T) {
	rt := shardedRT(7)
	rt.Node(2).Register("inc", true, func(h *Thread, arg interface{}) interface{} {
		return arg.(int) + 1
	})
	var res []interface{}
	rt.CreateThread(0, "caller", func(th *Thread) {
		res = th.CallVec(2, []VecElem{
			{Svc: "inc", Arg: 10, Size: 64},
			{Svc: "inc", Arg: 20, Size: 64},
			{Svc: "inc", Arg: 30, Size: 64},
		}, 64)
	})
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []interface{}{11, 21, 31}
	if len(res) != len(want) {
		t.Fatalf("results = %v, want %v", res, want)
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("results = %v, want %v", res, want)
		}
	}
}

// TestShardedThreadIDsDeterministic: thread ids are striped per shard, so
// they do not depend on cross-shard wall-clock interleaving.
func TestShardedThreadIDsDeterministic(t *testing.T) {
	collect := func() ([4]int, [4]int) {
		rt := shardedRT(1)
		var workerIDs, childIDs [4]int // per-node slots, each written by one shard
		for n := 0; n < 4; n++ {
			n := n
			w := rt.CreateThread(n, fmt.Sprintf("w%d", n), func(th *Thread) {
				// Spawn a child mid-run: its id must come from the node's
				// shard counter, not a global one.
				child := rt.CreateThread(n, fmt.Sprintf("c%d", n), func(*Thread) {})
				childIDs[n] = child.ID()
				th.Join(child)
			})
			workerIDs[n] = w.ID()
		}
		if err := rt.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return workerIDs, childIDs
	}
	w1, c1 := collect()
	w2, c2 := collect()
	if w1 != w2 || c1 != c2 {
		t.Fatalf("thread ids changed across runs: %v/%v vs %v/%v", w1, c1, w2, c2)
	}
	// Stripes: shard 0 (nodes 0,1) hands out ids ≡ 1 (mod 2), shard 1
	// (nodes 2,3) ids ≡ 0 (mod 2).
	for n := 0; n < 4; n++ {
		wantParity := 1
		if n >= 2 {
			wantParity = 0
		}
		if w1[n]%2 != wantParity || c1[n]%2 != wantParity {
			t.Fatalf("node %d ids %d/%d on wrong stripe", n, w1[n], c1[n])
		}
	}
}

// TestShardedFaultPlanKillsAndRestarts: a crash/restart plan on a sharded
// machine kills the owning shard's threads at the crash time, drops traffic
// to the dead node machine-wide, and respawns dispatchers at restart.
func TestShardedFaultPlanKillsAndRestarts(t *testing.T) {
	rt := shardedRT(3)
	rt.EnableFaults(1, madeleine.PartitionQueue)
	served := 0
	rt.Node(2).Register("work", true, func(h *Thread, arg interface{}) interface{} {
		served++
		return nil
	})
	crashAt := sim.Time(0).Add(sim.Micros(3000))
	restartAt := sim.Time(0).Add(sim.Micros(6000))
	rt.InjectFaultPlan((&sim.FaultPlan{Seed: 1}).Crash(crashAt, 2).Restart(restartAt, 2))

	// A long-lived victim thread on node 2 that would run past the crash.
	victimDone := false
	rt.CreateThread(2, "victim", func(th *Thread) {
		th.Advance(sim.Micros(20000))
		victimDone = true
	})
	// A client on shard 0 fires one-way work at node 2 every ms for 10ms.
	rt.CreateThread(0, "client", func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Advance(sim.Micros(1000))
			th.Async(2, "work", i, 64)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if victimDone {
		t.Fatal("victim thread on the crashed node ran to completion")
	}
	if rt.Node(2).Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", rt.Node(2).Restarts)
	}
	st := rt.Network().FaultStats()
	if st.Crashes != 1 || st.DeadDrops == 0 {
		t.Fatalf("fault stats %+v: want 1 crash and >0 dead drops", st)
	}
	// Requests sent before the crash and after the restart are served.
	if served == 0 {
		t.Fatal("no requests served at all")
	}
	if served >= 10 {
		t.Fatalf("served = %d, want < 10 (crash window must drop some)", served)
	}
}

// TestShardedCrossShardMigrationPanics: preemptive migration cannot cross a
// shard boundary.
func TestShardedCrossShardMigrationPanics(t *testing.T) {
	rt := shardedRT(5)
	panicked := false
	rt.CreateThread(0, "mover", func(th *Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		th.MigrateTo(2)
	})
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !panicked {
		t.Fatal("cross-shard MigrateTo did not panic")
	}
}

// TestShardedIntraShardMigrationWorks: migration between nodes of one shard
// still works and charges the migration latency.
func TestShardedIntraShardMigrationWorks(t *testing.T) {
	rt := shardedRT(5)
	rt.CreateThread(0, "mover", func(th *Thread) {
		before := th.Now()
		th.MigrateTo(1)
		if th.Node() != 1 || th.Now() <= before {
			t.Errorf("migration did not move/charge: node=%d dt=%v", th.Node(), th.Now().Sub(before))
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestShardedBalancerPanics: the machine-wide load balancer is rejected on
// sharded machines.
func TestShardedBalancerPanics(t *testing.T) {
	rt := shardedRT(5)
	defer func() {
		if recover() == nil {
			t.Fatal("StartBalancer on a sharded machine did not panic")
		}
	}()
	rt.StartBalancer(sim.Millisecond)
}
