package pm2

import (
	"fmt"
	"testing"

	"dsmpm2/internal/sim"
)

// spawnImbalanced puts nWorkers compute-heavy migratable threads on node 0
// of a nodes-node machine and returns their final locations.
func spawnImbalanced(rt *Runtime, nWorkers int, chunk sim.Duration, chunks int) []*Thread {
	var ts []*Thread
	for i := 0; i < nWorkers; i++ {
		t := rt.CreateThread(0, fmt.Sprintf("worker%d", i), func(th *Thread) {
			for c := 0; c < chunks; c++ {
				th.Compute(chunk)
			}
		})
		t.SetMigratable(true)
		ts = append(ts, t)
	}
	return ts
}

func TestBalancerSpreadsLoad(t *testing.T) {
	rt := newRT(4, nil)
	ts := spawnImbalanced(rt, 4, sim.Millisecond, 40)
	b := rt.StartBalancer(500 * sim.Microsecond)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	perNode := map[int]int{}
	for _, th := range ts {
		perNode[th.Node()]++
	}
	if len(perNode) < 3 {
		t.Fatalf("threads ended on only %d nodes (%v); balancer did not spread them", len(perNode), perNode)
	}
	if b.Moves == 0 {
		t.Fatal("balancer made no moves")
	}
}

func TestBalancerSpeedsUpImbalancedWork(t *testing.T) {
	run := func(balance bool) sim.Time {
		rt := newRT(4, nil)
		spawnImbalanced(rt, 4, sim.Millisecond, 40)
		if balance {
			rt.StartBalancer(500 * sim.Microsecond)
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Now()
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("balanced run (%v) not faster than imbalanced (%v)", with, without)
	}
}

func TestBalancerIgnoresNonMigratable(t *testing.T) {
	rt := newRT(2, nil)
	var pinned *Thread
	pinned = rt.CreateThread(0, "pinned", func(th *Thread) {
		for c := 0; c < 20; c++ {
			th.Compute(sim.Millisecond)
		}
	})
	rt.CreateThread(0, "also", func(th *Thread) {
		for c := 0; c < 20; c++ {
			th.Compute(sim.Millisecond)
		}
	})
	rt.StartBalancer(500 * sim.Microsecond)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if pinned.Node() != 0 {
		t.Fatal("non-migratable thread was moved")
	}
}

func TestBalancerStop(t *testing.T) {
	rt := newRT(2, nil)
	b := rt.StartBalancer(100 * sim.Microsecond)
	b.Stop()
	ts := spawnImbalanced(rt, 2, sim.Millisecond, 10)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// A stopped balancer makes no (new) moves; both threads stay put.
	for _, th := range ts {
		if th.Node() != 0 {
			t.Fatal("stopped balancer still moved a thread")
		}
	}
}

func TestLoadMeasure(t *testing.T) {
	rt := newRT(2, nil)
	rt.CreateThread(0, "a", func(th *Thread) { th.Compute(sim.Millisecond) })
	rt.CreateThread(0, "b", func(th *Thread) { th.Compute(sim.Millisecond) })
	rt.CreateThread(1, "c", func(th *Thread) { th.Compute(sim.Millisecond) })
	if rt.Load(0) != 2 || rt.Load(1) != 1 {
		t.Fatalf("loads = %d,%d; want 2,1", rt.Load(0), rt.Load(1))
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Load(0) != 0 || rt.Load(1) != 0 {
		t.Fatal("finished threads still counted as load")
	}
}

func TestRequestMigrationHonouredAtSafePoint(t *testing.T) {
	rt := newRT(2, nil)
	var where []int
	th := rt.CreateThread(0, "w", func(t2 *Thread) {
		t2.Compute(sim.Millisecond)
		where = append(where, t2.Node())
		t2.Compute(sim.Millisecond)
		where = append(where, t2.Node())
	})
	th.SetMigratable(true)
	rt.Engine().Schedule(sim.Time(500*sim.Microsecond), func() {
		th.RequestMigration(1)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if where[0] != 0 {
		t.Fatalf("migration happened before the safe point: %v", where)
	}
	if where[1] != 1 {
		t.Fatalf("migration request not honoured: %v", where)
	}
}
