package pm2

import (
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

func TestBulkRPCSlowerThanNull(t *testing.T) {
	rt := newRT(2, madeleine.BIPMyrinet)
	rt.Node(1).Register("echo", false, func(h *Thread, arg interface{}) interface{} {
		return arg
	})
	var nullTook, bulkTook sim.Duration
	rt.CreateThread(0, "caller", func(th *Thread) {
		start := th.Now()
		th.Call(1, "echo", nil, 0, 0)
		nullTook = th.Now().Sub(start)
		start = th.Now()
		th.Call(1, "echo", make([]byte, 4096), 4096, 4096)
		bulkTook = th.Now().Sub(start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if bulkTook <= nullTook {
		t.Fatalf("4KiB RPC (%v) not slower than null RPC (%v)", bulkTook, nullTook)
	}
}

func TestRPCFromHandlerThread(t *testing.T) {
	// A threaded handler may itself issue RPCs (protocol servers do this
	// when forwarding); nesting must not deadlock.
	rt := newRT(3, nil)
	rt.Node(2).Register("leaf", false, func(h *Thread, arg interface{}) interface{} {
		return arg.(int) + 1
	})
	rt.Node(1).Register("relay", true, func(h *Thread, arg interface{}) interface{} {
		return h.Call(2, "leaf", arg, 8, 8)
	})
	var got int
	rt.CreateThread(0, "caller", func(th *Thread) {
		got = th.Call(1, "relay", 10, 8, 8).(int)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("nested RPC = %d, want 11", got)
	}
}

func TestManyConcurrentCallers(t *testing.T) {
	rt := newRT(2, nil)
	served := 0
	rt.Node(1).Register("count", true, func(h *Thread, arg interface{}) interface{} {
		h.Advance(10 * sim.Microsecond)
		served++
		return served
	})
	const callers = 20
	for i := 0; i < callers; i++ {
		rt.CreateThread(0, "c", func(th *Thread) {
			th.Call(1, "count", nil, 0, 0)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if served != callers {
		t.Fatalf("served %d of %d calls", served, callers)
	}
}

func TestMigrationDuringComputePreservesWork(t *testing.T) {
	// A thread migrated between compute chunks must charge each chunk to
	// the node it is on at that moment.
	rt := newRT(2, nil)
	th := rt.CreateThread(0, "w", func(t2 *Thread) {
		t2.Compute(10 * sim.Microsecond)
		t2.MigrateTo(1)
		t2.Compute(10 * sim.Microsecond)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Node() != 1 {
		t.Fatal("thread not at destination")
	}
	if rt.Node(0).CPU.Busy() != 10*sim.Microsecond {
		t.Fatalf("node 0 CPU busy = %v, want 10us", rt.Node(0).CPU.Busy())
	}
	if rt.Node(1).CPU.Busy() != 10*sim.Microsecond {
		t.Fatalf("node 1 CPU busy = %v, want 10us", rt.Node(1).CPU.Busy())
	}
}
