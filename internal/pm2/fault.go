package pm2

import (
	"fmt"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// Node-level fault support: fail-stop crash (every thread located on the
// node dies, the network drops its traffic) and cold restart (fresh CPUs,
// fresh RPC dispatchers, empty queues). The DSM layer above coordinates the
// page-state recovery; this file only handles the runtime machinery.

// EnableFaults switches on the network fault layer and registers the
// runtime's payload handlers with it, so dropped RPC requests return their
// pooled envelopes exactly once and duplicated one-way requests get an
// independent envelope copy.
func (rt *Runtime) EnableFaults(seed int64, policy madeleine.PartitionPolicy) {
	rt.net.EnableFaults(seed, policy)
	rt.net.SetDropHandler(func(p interface{}) {
		if r, ok := p.(*rpcReq); ok {
			rt.putReq(r)
		}
	})
	rt.net.SetDupHandler(func(p interface{}) interface{} {
		r, ok := p.(*rpcReq)
		if !ok || r.reply != nil {
			// Only one-way invocations duplicate: a duplicated synchronous
			// request would push two replies into one private reply queue.
			return nil
		}
		r2 := rt.getReq()
		*r2 = *r
		return r2
	})
}

// KillNode fail-stops node n: every unfinished thread currently located on
// it (application threads, RPC dispatchers, handler threads, migrated-in
// threads) is killed, joiners of those threads are released, and the network
// starts dropping the node's traffic. Must run in engine context (a fault
// event), never from a thread on node n. Single-loop API: sharded machines
// deliver node faults through InjectFaultPlan, which runs the kill on the
// owning shard.
func (rt *Runtime) KillNode(n int) {
	if rt.se != nil {
		panic("pm2: KillNode on a sharded machine; use InjectFaultPlan")
	}
	node := rt.Node(n)
	if node.dead {
		return
	}
	node.dead = true
	rt.net.CrashNode(n)
	for _, t := range rt.threads {
		rt.killThread(t, n)
	}
}

// killThread kills t if it is an unfinished thread located on node n.
func (rt *Runtime) killThread(t *Thread, n int) {
	if t.node != n || t.done {
		return
	}
	t.proc.Kill()
	t.done = true
	for _, j := range t.joiners {
		if !j.Dead() {
			j.Unpark()
		}
	}
	t.joiners = nil
}

// RestartNode brings a crashed node back cold: alive again for the network,
// a fresh CPU resource (threads killed mid-compute can never return their
// units, so the old resource may be stranded), and freshly spawned
// dispatcher threads for every service that was registered, in registration
// order so replays are deterministic. Single-loop API: sharded machines
// deliver node faults through InjectFaultPlan.
func (rt *Runtime) RestartNode(n int) {
	if rt.se != nil {
		panic("pm2: RestartNode on a sharded machine; use InjectFaultPlan")
	}
	if !rt.Node(n).dead {
		return
	}
	rt.net.RestartNode(n)
	rt.restartNodeLocal(n)
}

// restartNodeLocal is the runtime half of a node restart (the network half
// is RestartNode/ApplyFault): fresh CPUs and respawned dispatchers.
func (rt *Runtime) restartNodeLocal(n int) {
	node := rt.nodes[n]
	if !node.dead {
		return
	}
	node.dead = false
	node.CPU = sim.NewResource(rt.cpus)
	for _, name := range node.svcOrder {
		node.spawnDispatcher(node.services[name])
	}
	node.Restarts++
}

// InjectFaultPlan schedules a declarative fault plan on the machine,
// handling both execution modes. Single-loop, events apply through the
// historical mutators. Sharded, each event fans out to every shard at its
// virtual time: the network flips each shard's fault view, and the shard
// owning a crashed/restarted node additionally kills or respawns its
// threads. Call after EnableFaults and before Run.
func (rt *Runtime) InjectFaultPlan(plan *sim.FaultPlan) {
	if rt.se == nil {
		rt.eng.InjectFaults(plan, func(ev sim.FaultEvent) {
			switch ev.Kind {
			case sim.FaultNodeCrash:
				rt.KillNode(ev.Node)
			case sim.FaultNodeRestart:
				rt.RestartNode(ev.Node)
			default:
				rt.net.ApplyFault(0, ev)
			}
		})
		return
	}
	rt.se.InjectFaults(plan, func(shard int, ev sim.FaultEvent) {
		rt.net.ApplyFault(shard, ev)
		switch ev.Kind {
		case sim.FaultNodeCrash:
			if rt.nodeShard[ev.Node] == shard {
				node := rt.nodes[ev.Node]
				if !node.dead {
					node.dead = true
					for _, t := range node.threads {
						rt.killThread(t, ev.Node)
					}
				}
			}
		case sim.FaultNodeRestart:
			if rt.nodeShard[ev.Node] == shard {
				rt.restartNodeLocal(ev.Node)
			}
		}
	})
}

// Dead reports whether the node is currently crashed.
func (n *Node) Dead() bool { return n.dead }

// checkAlive panics on operations against a crashed node, to surface fault
// plan bugs (spawning threads before the restart event) immediately.
func (n *Node) checkAlive(op string) {
	if n.dead {
		panic(fmt.Sprintf("pm2: %s on crashed node %d", op, n.ID))
	}
}
