package pm2

import (
	"fmt"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// Node-level fault support: fail-stop crash (every thread located on the
// node dies, the network drops its traffic) and cold restart (fresh CPUs,
// fresh RPC dispatchers, empty queues). The DSM layer above coordinates the
// page-state recovery; this file only handles the runtime machinery.

// EnableFaults switches on the network fault layer and registers the
// runtime's payload handlers with it, so dropped RPC requests return their
// pooled envelopes exactly once and duplicated one-way requests get an
// independent envelope copy.
func (rt *Runtime) EnableFaults(seed int64, policy madeleine.PartitionPolicy) {
	rt.net.EnableFaults(seed, policy)
	rt.net.SetDropHandler(func(p interface{}) {
		if r, ok := p.(*rpcReq); ok {
			rt.putReq(r)
		}
	})
	rt.net.SetDupHandler(func(p interface{}) interface{} {
		r, ok := p.(*rpcReq)
		if !ok || r.reply != nil {
			// Only one-way invocations duplicate: a duplicated synchronous
			// request would push two replies into one private reply queue.
			return nil
		}
		r2 := rt.getReq()
		*r2 = *r
		return r2
	})
}

// KillNode fail-stops node n: every unfinished thread currently located on
// it (application threads, RPC dispatchers, handler threads, migrated-in
// threads) is killed, joiners of those threads are released, and the network
// starts dropping the node's traffic. Must run in engine context (a fault
// event), never from a thread on node n.
func (rt *Runtime) KillNode(n int) {
	node := rt.Node(n)
	if node.dead {
		return
	}
	node.dead = true
	rt.net.CrashNode(n)
	for _, t := range rt.threads {
		if t.node != n || t.done {
			continue
		}
		t.proc.Kill()
		t.done = true
		for _, j := range t.joiners {
			if !j.Dead() {
				j.Unpark()
			}
		}
		t.joiners = nil
	}
}

// RestartNode brings a crashed node back cold: alive again for the network,
// a fresh CPU resource (threads killed mid-compute can never return their
// units, so the old resource may be stranded), and freshly spawned
// dispatcher threads for every service that was registered, in registration
// order so replays are deterministic.
func (rt *Runtime) RestartNode(n int) {
	node := rt.Node(n)
	if !node.dead {
		return
	}
	node.dead = false
	rt.net.RestartNode(n)
	node.CPU = sim.NewResource(rt.cpus)
	for _, name := range node.svcOrder {
		node.spawnDispatcher(node.services[name])
	}
	node.Restarts++
}

// Dead reports whether the node is currently crashed.
func (n *Node) Dead() bool { return n.dead }

// checkAlive panics on operations against a crashed node, to surface fault
// plan bugs (spawning threads before the restart event) immediately.
func (n *Node) checkAlive(op string) {
	if n.dead {
		panic(fmt.Sprintf("pm2: %s on crashed node %d", op, n.ID))
	}
}
