package pm2

import (
	"fmt"
	"math"
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

func newRT(nodes int, prof *madeleine.Profile) *Runtime {
	return NewRuntime(Config{Nodes: nodes, Network: prof, Seed: 1})
}

func TestThreadRunsOnNode(t *testing.T) {
	rt := newRT(2, nil)
	var node int
	rt.CreateThread(1, "w", func(th *Thread) { node = th.Node() })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if node != 1 {
		t.Fatalf("thread saw node %d, want 1", node)
	}
}

func TestComputeChargesNodeCPU(t *testing.T) {
	rt := newRT(1, nil)
	var done []sim.Time
	for i := 0; i < 2; i++ {
		rt.CreateThread(0, fmt.Sprintf("w%d", i), func(th *Thread) {
			th.Compute(10 * sim.Microsecond)
			done = append(done, th.Now())
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != sim.Time(10*sim.Microsecond) || done[1] != sim.Time(20*sim.Microsecond) {
		t.Fatalf("single-CPU node did not serialize compute: %v", done)
	}
}

func TestMultiCPUNodeParallel(t *testing.T) {
	rt := NewRuntime(Config{Nodes: 1, CPUsPerNode: 2, Seed: 1})
	var last sim.Time
	for i := 0; i < 2; i++ {
		rt.CreateThread(0, fmt.Sprintf("w%d", i), func(th *Thread) {
			th.Compute(10 * sim.Microsecond)
			if th.Now() > last {
				last = th.Now()
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if last != sim.Time(10*sim.Microsecond) {
		t.Fatalf("2 threads on 2 CPUs finished at %v, want 10us", last)
	}
}

func TestMigrationCostMatchesPaper(t *testing.T) {
	// Section 2.1: migrating a thread with minimal stack takes 75us over
	// BIP/Myrinet and 62us over SISCI/SCI.
	cases := []struct {
		prof *madeleine.Profile
		us   int
	}{
		{madeleine.BIPMyrinet, 75},
		{madeleine.SISCISCI, 62},
	}
	for _, c := range cases {
		rt := newRT(2, c.prof)
		var took sim.Duration
		rt.CreateThreadStack(0, "mig", 1024, func(th *Thread) {
			start := th.Now()
			th.MigrateTo(1)
			took = th.Now().Sub(start)
			if th.Node() != 1 {
				t.Errorf("thread did not move")
			}
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if got := int(math.Round(took.Microseconds())); got != c.us {
			t.Errorf("%s: migration took %dus, want %dus", c.prof.Name, got, c.us)
		}
	}
}

func TestMigrationCostGrowsWithStack(t *testing.T) {
	rt := newRT(2, madeleine.BIPMyrinet)
	var small, big sim.Duration
	rt.CreateThreadStack(0, "small", 1024, func(th *Thread) {
		s := th.Now()
		th.MigrateTo(1)
		small = th.Now().Sub(s)
	})
	rt.CreateThreadStack(0, "big", 64*1024, func(th *Thread) {
		s := th.Now()
		th.MigrateTo(1)
		big = th.Now().Sub(s)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("64KiB-stack migration (%v) not slower than 1KiB (%v)", big, small)
	}
}

func TestMigrateToSelfIsFree(t *testing.T) {
	rt := newRT(2, nil)
	rt.CreateThread(0, "w", func(th *Thread) {
		th.MigrateTo(0)
		if th.Now() != 0 || th.Migrations() != 0 {
			t.Error("self-migration charged time or counted")
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationStats(t *testing.T) {
	rt := newRT(3, nil)
	rt.CreateThread(0, "w", func(th *Thread) {
		th.MigrateTo(1)
		th.MigrateTo(2)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Node(0).MigrationsOut != 1 || rt.Node(1).MigrationsIn != 1 ||
		rt.Node(1).MigrationsOut != 1 || rt.Node(2).MigrationsIn != 1 {
		t.Fatal("migration stats wrong")
	}
}

func TestNullRPCLatency(t *testing.T) {
	// Section 2.1: minimal RPC latency is 6us over SISCI/SCI and 8us over
	// BIP/Myrinet.
	cases := []struct {
		prof *madeleine.Profile
		us   int
	}{
		{madeleine.SISCISCI, 6},
		{madeleine.BIPMyrinet, 8},
	}
	for _, c := range cases {
		rt := newRT(2, c.prof)
		rt.Node(1).Register("null", false, func(h *Thread, arg interface{}) interface{} {
			return nil
		})
		var took sim.Duration
		rt.CreateThread(0, "caller", func(th *Thread) {
			start := th.Now()
			th.Call(1, "null", nil, 0, 0)
			took = th.Now().Sub(start)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if got := int(math.Round(took.Microseconds())); got != c.us {
			t.Errorf("%s: null RPC took %dus, want %dus", c.prof.Name, got, c.us)
		}
	}
}

func TestRPCCarriesValues(t *testing.T) {
	rt := newRT(2, nil)
	rt.Node(1).Register("double", false, func(h *Thread, arg interface{}) interface{} {
		return arg.(int) * 2
	})
	var got int
	rt.CreateThread(0, "caller", func(th *Thread) {
		got = th.Call(1, "double", 21, 8, 8).(int)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("RPC result = %d, want 42", got)
	}
}

func TestRPCHandlerRunsOnDestNode(t *testing.T) {
	rt := newRT(2, nil)
	var handlerNode int
	rt.Node(1).Register("where", true, func(h *Thread, arg interface{}) interface{} {
		handlerNode = h.Node()
		return nil
	})
	rt.CreateThread(0, "caller", func(th *Thread) {
		th.Call(1, "where", nil, 0, 0)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if handlerNode != 1 {
		t.Fatalf("handler ran on node %d, want 1", handlerNode)
	}
}

func TestThreadedHandlersConcurrent(t *testing.T) {
	rt := newRT(2, nil)
	rt.Node(1).Register("slow", true, func(h *Thread, arg interface{}) interface{} {
		h.Advance(100 * sim.Microsecond) // latency, not CPU
		return nil
	})
	var done []sim.Time
	for i := 0; i < 3; i++ {
		rt.CreateThread(0, fmt.Sprintf("c%d", i), func(th *Thread) {
			th.Call(1, "slow", nil, 0, 0)
			done = append(done, th.Now())
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Threaded handlers overlap: all three calls finish at the same time.
	for _, d := range done {
		if d != done[0] {
			t.Fatalf("threaded handlers serialized: %v", done)
		}
	}
	if rt.Node(1).HandlersSpawned != 3 {
		t.Fatalf("handlers spawned = %d, want 3", rt.Node(1).HandlersSpawned)
	}
}

func TestQuickHandlersSerialize(t *testing.T) {
	rt := newRT(2, nil)
	rt.Node(1).Register("slow", false, func(h *Thread, arg interface{}) interface{} {
		h.Advance(100 * sim.Microsecond)
		return nil
	})
	var done []sim.Time
	for i := 0; i < 2; i++ {
		rt.CreateThread(0, fmt.Sprintf("c%d", i), func(th *Thread) {
			th.Call(1, "slow", nil, 0, 0)
			done = append(done, th.Now())
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] == done[1] {
		t.Fatalf("quick handlers overlapped: %v", done)
	}
}

func TestAsyncDoesNotBlock(t *testing.T) {
	rt := newRT(2, nil)
	served := false
	rt.Node(1).Register("note", false, func(h *Thread, arg interface{}) interface{} {
		served = true
		return nil
	})
	var sentAt sim.Time
	rt.CreateThread(0, "caller", func(th *Thread) {
		th.Async(1, "note", nil, 16)
		sentAt = th.Now()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if sentAt != 0 {
		t.Fatalf("async send blocked until %v", sentAt)
	}
	if !served {
		t.Fatal("async request never served")
	}
}

func TestDuplicateServicePanics(t *testing.T) {
	rt := newRT(1, nil)
	rt.Node(0).Register("svc", false, func(h *Thread, arg interface{}) interface{} { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	rt.Node(0).Register("svc", false, func(h *Thread, arg interface{}) interface{} { return nil })
}

func TestJoin(t *testing.T) {
	rt := newRT(1, nil)
	var order []string
	worker := rt.CreateThread(0, "worker", func(th *Thread) {
		th.Advance(50 * sim.Microsecond)
		order = append(order, "worker")
	})
	rt.CreateThread(0, "main", func(th *Thread) {
		th.Join(worker)
		order = append(order, "main")
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "worker" {
		t.Fatalf("join ordering = %v", order)
	}
}

func TestJoinFinishedThread(t *testing.T) {
	rt := newRT(1, nil)
	worker := rt.CreateThread(0, "worker", func(th *Thread) {})
	rt.CreateThread(0, "main", func(th *Thread) {
		th.Advance(100 * sim.Microsecond)
		th.Join(worker) // already done; must not block
		if !worker.Done() {
			t.Error("worker not done")
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTLS(t *testing.T) {
	rt := newRT(1, nil)
	rt.CreateThread(0, "w", func(th *Thread) {
		if th.TLS("k") != nil {
			t.Error("unset TLS key non-nil")
		}
		th.SetTLS("k", 7)
		if th.TLS("k").(int) != 7 {
			t.Error("TLS round trip failed")
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFromProc(t *testing.T) {
	rt := newRT(1, nil)
	var th *Thread
	created := rt.CreateThread(0, "w", func(t2 *Thread) {
		th = FromProc(t2.Proc())
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if th != created {
		t.Fatal("FromProc did not recover the thread")
	}
}

func TestBadNodePanics(t *testing.T) {
	rt := newRT(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("CreateThread on bad node did not panic")
		}
	}()
	rt.CreateThread(7, "w", func(th *Thread) {})
}
