package pm2

import (
	"testing"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// TestCallVecFansOutAndCoalesces: one vector call fans into one handler per
// element (threaded handlers run concurrently), and the single coalesced
// reply carries the results in element order — after every handler
// completed, including ones that block.
func TestCallVecFansOutAndCoalesces(t *testing.T) {
	rt := NewRuntime(Config{Nodes: 2, Network: madeleine.BIPMyrinet, Seed: 1})
	rt.Node(1).Register("double", true, func(h *Thread, arg interface{}) interface{} {
		h.Compute(10 * sim.Microsecond) // handlers overlap; the join waits for all
		return arg.(int) * 2
	})
	rt.Node(1).Register("negate", true, func(h *Thread, arg interface{}) interface{} {
		return -arg.(int)
	})
	var got []interface{}
	rt.CreateThread(0, "caller", func(th *Thread) {
		got = th.CallVec(1, []VecElem{
			{Svc: "double", Arg: 3, Size: 64},
			{Svc: "negate", Arg: 5, Size: 64},
			{Svc: "double", Arg: 7, Size: 64},
		}, 64)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 6 || got[1] != -5 || got[2] != 14 {
		t.Fatalf("vector results = %v, want [6 -5 14] in element order", got)
	}
	if n := rt.Node(1).HandlersSpawned; n != 3 {
		t.Fatalf("HandlersSpawned = %d, want 3 (one per element)", n)
	}
	msgs, _ := rt.Network().Stats()
	// 3 request parts + 1 coalesced reply.
	if msgs != 4 {
		t.Fatalf("messages = %d, want 4 (3 parts + 1 reply)", msgs)
	}
	if env := rt.Network().Envelopes(); env != 2 {
		t.Fatalf("envelopes = %d, want 2 (1 request batch + 1 reply)", env)
	}
}

// TestCallVecEmpty: an empty vector completes immediately instead of
// wedging the caller.
func TestCallVecEmpty(t *testing.T) {
	rt := NewRuntime(Config{Nodes: 2, Network: madeleine.BIPMyrinet, Seed: 1})
	done := false
	rt.CreateThread(0, "caller", func(th *Thread) {
		if res := th.CallVec(1, nil, 64); len(res) != 0 {
			t.Errorf("empty vector returned %v", res)
		}
		done = true
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("caller never completed")
	}
}

// TestAsyncVecDeadNodeReclaimsRequests: a fire-and-forget vector whose
// destination died reclaims its pooled request envelopes exactly once (the
// network drop handler routes them back to the runtime's freelist; a double
// put would hand one request out twice and corrupt a later invocation).
func TestAsyncVecDeadNodeReclaimsRequests(t *testing.T) {
	rt := NewRuntime(Config{Nodes: 3, Network: madeleine.BIPMyrinet, Seed: 1})
	rt.EnableFaults(1, madeleine.PartitionQueue)
	calls := 0
	for _, n := range []int{1, 2} {
		node := rt.Node(n)
		node.Register("svc", false, func(h *Thread, arg interface{}) interface{} {
			calls++
			return nil
		})
	}
	rt.KillNode(1)
	rt.CreateThread(0, "caller", func(th *Thread) {
		rt.AsyncVecFrom(0, 1, []VecElem{ // dropped whole: dest is dead
			{Svc: "svc", Arg: 1, Size: 64},
			{Svc: "svc", Arg: 2, Size: 64},
		})
		// A later vector to a live node must get fresh, distinct requests
		// out of the freelist and run both elements.
		th.CallVec(2, []VecElem{
			{Svc: "svc", Arg: 3, Size: 64},
			{Svc: "svc", Arg: 4, Size: 64},
		}, 64)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("live node ran %d handlers, want 2", calls)
	}
}
