package pm2

import (
	"fmt"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// Handler is the body of an RPC service. It runs in a thread on the node
// that registered the service; its return value travels back to a
// synchronous caller (and is discarded for one-way invocations).
type Handler func(h *Thread, arg interface{}) interface{}

// service is a registered RPC service on one node.
type service struct {
	name     string
	chanID   madeleine.ChanID
	handler  Handler
	threaded bool
	node     *Node
}

// rpcReq is the wire payload of an invocation. Requests are pooled on the
// Runtime: the service releases one after running its handler, so at steady
// state the RPC machinery allocates no request envelopes.
type rpcReq struct {
	arg     interface{}
	reply   *sim.Chan // nil for one-way invocations
	retSize int
	from    int

	// join links the request into a vector invocation: the handler's
	// completion counts down the join instead of sending its own reply, and
	// the last element's completion sends the single coalesced reply. idx is
	// this element's position in the vector (its result slot).
	join *vecJoin
	idx  int
}

// vecJoin coalesces the completions of one vector invocation (CallVec /
// AsyncVec) into a single reply: the envelope fans into one handler per
// element, each completion decrements remaining, and the last completion
// ships one reply carrying every element's result in element order.
type vecJoin struct {
	remaining int
	results   []interface{}
	reply     *sim.Chan // nil for fire-and-forget vectors
	retSize   int
	from      int
}

// getReq takes a request envelope from the freelist (or allocates one).
// Sharded machines always allocate: an envelope freed by the callee's shard
// would otherwise re-enter a pool the caller's shard also touches.
func (rt *Runtime) getReq() *rpcReq {
	if rt.se == nil {
		if r, ok := rt.reqFree.Get(); ok {
			return r
		}
	}
	return new(rpcReq)
}

// putReq returns a request envelope to the freelist (a no-op on sharded
// machines; see getReq).
func (rt *Runtime) putReq(r *rpcReq) {
	if rt.se != nil {
		return
	}
	*r = rpcReq{}
	rt.reqFree.Put(r)
}

// svcChannel names the madeleine channel carrying requests for a service.
func svcChannel(name string) string { return "rpc:" + name }

// svcChanID resolves (and caches) the interned channel id for a service
// name, so per-message sends neither concatenate strings nor consult the
// network's name table.
func (rt *Runtime) svcChanID(name string) madeleine.ChanID {
	if rt.se == nil {
		if id, ok := rt.svcIDs[name]; ok {
			return id
		}
		id := rt.net.ChannelID(svcChannel(name))
		rt.svcIDs[name] = id
		return id
	}
	rt.svcMu.RLock()
	id, ok := rt.svcIDs[name]
	rt.svcMu.RUnlock()
	if ok {
		return id
	}
	id = rt.net.ChannelID(svcChannel(name))
	rt.svcMu.Lock()
	rt.svcIDs[name] = id
	rt.svcMu.Unlock()
	return id
}

// Register installs an RPC service on the node. If threaded is true, each
// invocation is handled by a freshly created thread, so invocations proceed
// concurrently (this is how DSM-PM2's page servers stay reactive); otherwise
// requests are handled one at a time in the service's dispatcher thread,
// PM2's "pre-existing thread" flavor.
func (n *Node) Register(name string, threaded bool, h Handler) {
	if _, dup := n.services[name]; dup {
		panic(fmt.Sprintf("pm2: service %q registered twice on node %d", name, n.ID))
	}
	svc := &service{
		name:     name,
		chanID:   n.rt.svcChanID(name),
		handler:  h,
		threaded: threaded,
		node:     n,
	}
	n.services[name] = svc
	n.svcOrder = append(n.svcOrder, name)
	n.spawnDispatcher(svc)
}

// spawnDispatcher starts the daemon thread that receives a service's
// requests. It runs once at registration and again each time a crashed node
// restarts (the crash killed the previous dispatcher).
func (n *Node) spawnDispatcher(svc *service) {
	dispatcher := n.rt.CreateThread(n.ID, fmt.Sprintf("rpcd:%s@%d", svc.name, n.ID), func(t *Thread) {
		for {
			msg := n.rt.net.RecvID(t.proc, n.ID, svc.chanID)
			req := msg.Payload.(*rpcReq)
			n.rt.net.FreeMessage(msg)
			if svc.threaded {
				n.HandlersSpawned++
				n.rt.CreateThread(n.ID, fmt.Sprintf("rpch:%s@%d", svc.name, n.ID), func(ht *Thread) {
					svc.run(ht, req)
				})
			} else {
				svc.run(t, req)
			}
		}
	})
	dispatcher.Proc().MarkDaemon()
}

// SizedReply lets a handler override its reply's wire size at completion
// time, for results whose size is only known when the handler finishes —
// e.g. a barrier grant carrying the write notices the generation's arrivals
// accumulated. The reply is charged for Size bytes and the caller receives
// Value. From a vector element, Size adds to the coalesced reply's charge
// instead (the caller-supplied base covers the envelope, each override its
// element's payload).
type SizedReply struct {
	Value interface{}
	Size  int
}

// run executes the handler and sends the reply if one is expected, charged
// on the link back to the caller. Elements of a vector invocation do not
// reply individually: each completion counts down the shared join, and the
// last one sends the single coalesced reply.
func (svc *service) run(t *Thread, req *rpcReq) {
	res := svc.handler(t, req.arg)
	if sr, ok := res.(*SizedReply); ok {
		if req.join != nil {
			req.join.retSize += sr.Size
		} else {
			req.retSize = sr.Size
		}
		res = sr.Value
	}
	if j := req.join; j != nil {
		idx := req.idx
		svc.node.rt.putReq(req)
		if j.results != nil {
			j.results[idx] = res
		}
		j.remaining--
		if j.remaining == 0 && j.reply != nil {
			prof := svc.node.rt.Link(svc.node.ID, j.from)
			d := prof.RPCBase / 2
			if j.retSize > 64 {
				d += prof.Transfer(j.retSize) - prof.XferBase
			}
			svc.node.rt.net.SendDirect(svc.node.ID, j.from, j.reply, j.retSize, j.results, d)
		}
		return
	}
	if req.reply != nil {
		prof := svc.node.rt.Link(svc.node.ID, req.from)
		d := prof.RPCBase / 2
		if req.retSize > 64 {
			d += prof.Transfer(req.retSize) - prof.XferBase
		}
		svc.node.rt.net.SendDirect(svc.node.ID, req.from, req.reply, req.retSize, res, d)
	}
	svc.node.rt.putReq(req)
}

// Call synchronously invokes service on node dest with the given argument,
// and blocks until the result arrives. argSize and retSize are the wire
// sizes used for timing; a null RPC (both small) costs the profile's RPCBase
// plus handler execution time, matching the Section 2.1 micro-measurements.
func (t *Thread) Call(dest int, svcName string, arg interface{}, argSize, retSize int) interface{} {
	rt := t.rt
	if t.reply == nil {
		t.reply = new(sim.Chan)
	}
	reply := t.reply
	req := rt.getReq()
	*req = rpcReq{arg: arg, reply: reply, retSize: retSize, from: t.node}
	prof := rt.Link(t.node, dest)
	d := prof.RPCBase / 2
	if argSize > 64 {
		d += prof.Transfer(argSize) - prof.XferBase
	}
	rt.net.SendID(t.node, dest, rt.svcChanID(svcName), argSize, req, d)
	return reply.Recv(t.proc)
}

// Async invokes service on node dest without waiting for completion or
// result. Small arguments are charged at the control-message cost, large
// ones at the bulk transfer cost; this is the flavor the DSM communication
// module uses for page requests, page sends and invalidations.
func (t *Thread) Async(dest int, svcName string, arg interface{}, size int) {
	t.rt.AsyncFrom(t.node, dest, svcName, arg, size)
}

// AsyncFrom is Async with an explicit source node; the DSM layer uses it
// when a server thread answers on behalf of its node.
func (rt *Runtime) AsyncFrom(from, dest int, svcName string, arg interface{}, size int) {
	req := rt.getReq()
	req.arg = arg
	ch := rt.svcChanID(svcName)
	if size > 64 {
		rt.net.SendBulkID(from, dest, ch, size, req)
	} else {
		rt.net.SendCtrlID(from, dest, ch, req)
	}
}

// VecElem is one element of a vector invocation: a service name, its
// argument, and the element's wire size.
type VecElem struct {
	Svc  string
	Arg  interface{}
	Size int
}

// StartVecFrom ships a vector of service invocations to dest as ONE
// multi-part envelope (a single departure through the link-contention model)
// and returns the reply channel the coalesced reply will arrive on. Each
// element fans into its service's normal dispatch on the destination —
// threaded services handle elements concurrently — and the last element's
// completion sends one reply carrying the results in element order. The
// caller blocks on the returned channel when it wants vector-call semantics
// (CallVec does), or interleaves several destinations' envelopes and waits
// once at the end (the DSM outbox flush does).
func (rt *Runtime) StartVecFrom(from, dest int, elems []VecElem, retSize int) *sim.Chan {
	reply := new(sim.Chan)
	rt.sendVec(from, dest, elems, reply, retSize)
	return reply
}

// AsyncVecFrom is StartVecFrom without a reply: the envelope fans out on the
// destination and nobody waits (fire-and-forget vectors).
func (rt *Runtime) AsyncVecFrom(from, dest int, elems []VecElem) {
	rt.sendVec(from, dest, elems, nil, 0)
}

// CallVec invokes a vector of per-element service invocations on dest as one
// multi-part envelope, blocking until every handler completed; the single
// coalesced reply carries the handlers' results in element order.
func (t *Thread) CallVec(dest int, elems []VecElem, retSize int) []interface{} {
	reply := t.rt.StartVecFrom(t.node, dest, elems, retSize)
	res, _ := reply.Recv(t.proc).([]interface{})
	return res
}

// sendVec builds the pooled per-element requests, binds them to one join,
// and ships the whole vector as a single gather envelope. The latency charge
// mirrors Call for replied vectors (half a null-RPC round trip plus the bulk
// time of the summed payload) and Async for fire-and-forget ones.
func (rt *Runtime) sendVec(from, dest int, elems []VecElem, reply *sim.Chan, retSize int) {
	if len(elems) == 0 {
		if reply != nil {
			// An empty vector completes immediately: push the (empty)
			// results so a generic send-then-wait loop never wedges.
			reply.Push([]interface{}(nil))
		}
		return
	}
	j := &vecJoin{remaining: len(elems), reply: reply, retSize: retSize, from: from}
	if reply != nil {
		j.results = make([]interface{}, len(elems))
	}
	parts := make([]madeleine.GatherPart, len(elems))
	total := 0
	for i, el := range elems {
		req := rt.getReq()
		req.arg = el.Arg
		req.from = from
		req.join = j
		req.idx = i
		parts[i] = madeleine.GatherPart{Chan: rt.svcChanID(el.Svc), Size: el.Size, Payload: req}
		total += el.Size
	}
	prof := rt.Link(from, dest)
	var d sim.Duration
	if reply != nil {
		d = prof.RPCBase / 2
		if total > 64 {
			d += prof.Transfer(total) - prof.XferBase
		}
	} else if total > 64 {
		d = prof.Transfer(total)
	} else {
		d = prof.CtrlMsg
	}
	rt.net.SendGather(from, dest, parts, d)
}
