package pm2

import (
	"fmt"

	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// Handler is the body of an RPC service. It runs in a thread on the node
// that registered the service; its return value travels back to a
// synchronous caller (and is discarded for one-way invocations).
type Handler func(h *Thread, arg interface{}) interface{}

// service is a registered RPC service on one node.
type service struct {
	name     string
	chanID   madeleine.ChanID
	handler  Handler
	threaded bool
	node     *Node
}

// rpcReq is the wire payload of an invocation. Requests are pooled on the
// Runtime: the service releases one after running its handler, so at steady
// state the RPC machinery allocates no request envelopes.
type rpcReq struct {
	arg     interface{}
	reply   *sim.Chan // nil for one-way invocations
	retSize int
	from    int
}

// getReq takes a request envelope from the freelist (or allocates one).
func (rt *Runtime) getReq() *rpcReq {
	if r, ok := rt.reqFree.Get(); ok {
		return r
	}
	return new(rpcReq)
}

// putReq returns a request envelope to the freelist.
func (rt *Runtime) putReq(r *rpcReq) {
	*r = rpcReq{}
	rt.reqFree.Put(r)
}

// svcChannel names the madeleine channel carrying requests for a service.
func svcChannel(name string) string { return "rpc:" + name }

// svcChanID resolves (and caches) the interned channel id for a service
// name, so per-message sends neither concatenate strings nor consult the
// network's name table.
func (rt *Runtime) svcChanID(name string) madeleine.ChanID {
	if id, ok := rt.svcIDs[name]; ok {
		return id
	}
	id := rt.net.ChannelID(svcChannel(name))
	rt.svcIDs[name] = id
	return id
}

// Register installs an RPC service on the node. If threaded is true, each
// invocation is handled by a freshly created thread, so invocations proceed
// concurrently (this is how DSM-PM2's page servers stay reactive); otherwise
// requests are handled one at a time in the service's dispatcher thread,
// PM2's "pre-existing thread" flavor.
func (n *Node) Register(name string, threaded bool, h Handler) {
	if _, dup := n.services[name]; dup {
		panic(fmt.Sprintf("pm2: service %q registered twice on node %d", name, n.ID))
	}
	svc := &service{
		name:     name,
		chanID:   n.rt.svcChanID(name),
		handler:  h,
		threaded: threaded,
		node:     n,
	}
	n.services[name] = svc
	n.svcOrder = append(n.svcOrder, name)
	n.spawnDispatcher(svc)
}

// spawnDispatcher starts the daemon thread that receives a service's
// requests. It runs once at registration and again each time a crashed node
// restarts (the crash killed the previous dispatcher).
func (n *Node) spawnDispatcher(svc *service) {
	dispatcher := n.rt.CreateThread(n.ID, fmt.Sprintf("rpcd:%s@%d", svc.name, n.ID), func(t *Thread) {
		for {
			msg := n.rt.net.RecvID(t.proc, n.ID, svc.chanID)
			req := msg.Payload.(*rpcReq)
			n.rt.net.FreeMessage(msg)
			if svc.threaded {
				n.HandlersSpawned++
				n.rt.CreateThread(n.ID, fmt.Sprintf("rpch:%s@%d", svc.name, n.ID), func(ht *Thread) {
					svc.run(ht, req)
				})
			} else {
				svc.run(t, req)
			}
		}
	})
	dispatcher.Proc().MarkDaemon()
}

// run executes the handler and sends the reply if one is expected, charged
// on the link back to the caller.
func (svc *service) run(t *Thread, req *rpcReq) {
	res := svc.handler(t, req.arg)
	if req.reply != nil {
		prof := svc.node.rt.Link(svc.node.ID, req.from)
		d := prof.RPCBase / 2
		if req.retSize > 64 {
			d += prof.Transfer(req.retSize) - prof.XferBase
		}
		svc.node.rt.net.SendDirect(svc.node.ID, req.from, req.reply, req.retSize, res, d)
	}
	svc.node.rt.putReq(req)
}

// Call synchronously invokes service on node dest with the given argument,
// and blocks until the result arrives. argSize and retSize are the wire
// sizes used for timing; a null RPC (both small) costs the profile's RPCBase
// plus handler execution time, matching the Section 2.1 micro-measurements.
func (t *Thread) Call(dest int, svcName string, arg interface{}, argSize, retSize int) interface{} {
	rt := t.rt
	if t.reply == nil {
		t.reply = new(sim.Chan)
	}
	reply := t.reply
	req := rt.getReq()
	*req = rpcReq{arg: arg, reply: reply, retSize: retSize, from: t.node}
	prof := rt.Link(t.node, dest)
	d := prof.RPCBase / 2
	if argSize > 64 {
		d += prof.Transfer(argSize) - prof.XferBase
	}
	rt.net.SendID(t.node, dest, rt.svcChanID(svcName), argSize, req, d)
	return reply.Recv(t.proc)
}

// Async invokes service on node dest without waiting for completion or
// result. Small arguments are charged at the control-message cost, large
// ones at the bulk transfer cost; this is the flavor the DSM communication
// module uses for page requests, page sends and invalidations.
func (t *Thread) Async(dest int, svcName string, arg interface{}, size int) {
	t.rt.AsyncFrom(t.node, dest, svcName, arg, size)
}

// AsyncFrom is Async with an explicit source node; the DSM layer uses it
// when a server thread answers on behalf of its node.
func (rt *Runtime) AsyncFrom(from, dest int, svcName string, arg interface{}, size int) {
	req := rt.getReq()
	req.arg = arg
	ch := rt.svcChanID(svcName)
	if size > 64 {
		rt.net.SendBulkID(from, dest, ch, size, req)
	} else {
		rt.net.SendCtrlID(from, dest, ch, req)
	}
}
