package pm2

import (
	"sort"

	"dsmpm2/internal/sim"
)

// Dynamic load balancing (Section 2.1): "Such a functionality is typically
// useful to implement generic policies for dynamic load balancing,
// independently of the applications: the load of each processing node can be
// evaluated according to some measure, and balanced using preemptive
// migration."
//
// Preemption happens at scheduler points, as in Marcel: the balancer flags a
// thread, and the thread migrates itself at its next Compute/Yield boundary
// (a safe point), carrying its stack to the same iso-address on the target.

// RequestMigration asks the thread to move to dest at its next safe point.
// It may be called from any simulation context; the move is asynchronous.
func (t *Thread) RequestMigration(dest int) {
	t.rt.Node(dest) // validate
	t.pendingDest = dest
}

// SetMigratable marks the thread as a candidate for balancer-initiated
// migration. Threads are not migratable by default: service threads and
// threads pinned to their data must stay put.
func (t *Thread) SetMigratable(on bool) { t.migratable = on }

// Migratable reports whether the balancer may move this thread.
func (t *Thread) Migratable() bool { return t.migratable }

// checkPreempt honours a pending migration request; called at safe points.
func (t *Thread) checkPreempt() {
	if t.pendingDest >= 0 {
		dest := t.pendingDest
		t.pendingDest = -1
		t.MigrateTo(dest)
	}
}

// Load reports the number of live application threads currently located on
// node — the balancer's load measure.
func (rt *Runtime) Load(node int) int {
	if rt.se != nil {
		panic("pm2: Load walks every shard's threads; not supported on a sharded machine")
	}
	n := 0
	for _, t := range rt.threads {
		if !t.done && !t.proc.Daemon() && t.node == node {
			n++
		}
	}
	return n
}

// Balancer periodically evaluates per-node load and evens it out with
// preemptive thread migration. One balancer daemon runs per machine.
type Balancer struct {
	rt       *Runtime
	interval sim.Duration
	stopped  bool

	// Moves counts balancer-initiated migrations (requested; a thread
	// that finishes before its next safe point never actually moves).
	Moves int
}

// StartBalancer launches the load-balancing daemon with the given sampling
// interval. Policy: whenever the most and least loaded nodes differ by more
// than one thread, one migratable thread moves from the former to the
// latter. The daemon retires when the machine has no live application
// threads left (so simulations terminate); start it after spawning the
// workers it should balance.
func (rt *Runtime) StartBalancer(interval sim.Duration) *Balancer {
	if rt.se != nil {
		// The balancer samples every node's load and moves threads between
		// arbitrary nodes — both cross-shard operations. Sharded machines
		// balance within the application (or not at all).
		panic("pm2: the load balancer is not supported on a sharded machine")
	}
	if interval <= 0 {
		interval = sim.Millisecond
	}
	b := &Balancer{rt: rt, interval: interval}
	daemon := rt.CreateThread(0, "load-balancer", func(t *Thread) {
		for !b.stopped && rt.eng.Live() > 0 {
			t.Advance(b.interval)
			b.step()
		}
	})
	daemon.Proc().MarkDaemon()
	return b
}

// Stop halts the balancer after its current sampling sleep.
func (b *Balancer) Stop() { b.stopped = true }

// step performs one balancing decision.
func (b *Balancer) step() {
	rt := b.rt
	loads := make([]int, rt.Nodes())
	for n := range loads {
		loads[n] = rt.Load(n)
	}
	max, min := 0, 0
	for n, l := range loads {
		if l > loads[max] {
			max = n
		}
		if l < loads[min] {
			min = n
		}
	}
	if loads[max]-loads[min] <= 1 {
		return
	}
	// Deterministic victim choice: the migratable thread with the lowest
	// id on the overloaded node that has no move pending.
	var candidates []*Thread
	for _, t := range rt.threads {
		if !t.done && t.migratable && t.node == max && t.pendingDest < 0 {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		return
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].id < candidates[j].id })
	candidates[0].RequestMigration(min)
	b.Moves++
}
