package pm2

import (
	"fmt"

	"dsmpm2/internal/sim"
)

// Thread is a Marcel-style user-level thread. It executes on a simulated
// node, consumes that node's CPU for its compute phases, and can migrate
// preemptively to another node, carrying its stack and descriptor at the
// same virtual addresses thanks to the iso-address allocation scheme.
//
// In this reproduction the goroutine backing the thread never moves — only
// the thread's simulated location changes, and the migration latency
// (a function of the stack size, as in Table 4) is charged on the network.
// DSM protocols only observe the location and the latency, so the semantics
// they depend on are preserved.
type Thread struct {
	proc *sim.Proc
	rt   *Runtime

	id        int
	name      string
	node      int // current simulated location
	stackSize int

	// tls carries thread-local values (Marcel thread keys).
	tls map[string]interface{}

	// reply is the thread's reusable RPC reply queue. A thread has at
	// most one synchronous Call outstanding (Call blocks until the single
	// reply is consumed), so one channel serves its whole lifetime.
	reply *sim.Chan

	migrations int
	done       bool
	joiners    []*sim.Proc

	// Load-balancing state: a pending preemptive migration request and
	// whether the balancer may move this thread at all.
	pendingDest int
	migratable  bool
}

// DefaultStackSize matches the paper's "very small" test-thread stack of
// about 1 KiB; applications may ask for more via CreateThreadStack.
const DefaultStackSize = 1024

// CreateThread starts fn in a new thread on the given node with the default
// stack size.
func (rt *Runtime) CreateThread(node int, name string, fn func(t *Thread)) *Thread {
	return rt.CreateThreadStack(node, name, DefaultStackSize, fn)
}

// CreateThreadStack starts fn in a new thread on node with an explicit stack
// size in bytes. The stack size drives migration cost.
func (rt *Runtime) CreateThreadStack(node int, name string, stack int, fn func(t *Thread)) *Thread {
	if stack <= 0 {
		stack = DefaultStackSize
	}
	n := rt.Node(node)
	n.checkAlive("CreateThread") // validate
	// Thread ids are handed out per shard (stride = shard count) so a
	// sharded machine's ids are deterministic regardless of how the shards
	// interleave in wall time; with one shard this is the historical
	// 1,2,3,... sequence.
	shard := rt.ShardOf(node)
	stride := len(rt.shardNext)
	id := rt.shardNext[shard]*stride + shard + 1
	rt.shardNext[shard]++
	t := &Thread{
		rt:          rt,
		id:          id,
		name:        name,
		node:        node,
		stackSize:   stack,
		pendingDest: -1,
	}
	if rt.se != nil {
		rt.thMu.Lock()
		rt.threads = append(rt.threads, t)
		rt.thMu.Unlock()
		// The node-local list drives sharded KillNode; it only ever
		// changes from the owning shard's context.
		n.threads = append(n.threads, t)
	} else {
		rt.threads = append(rt.threads, t)
	}
	t.proc = rt.engFor(node).Go(name, func(p *sim.Proc) {
		fn(t)
		t.done = true
		for _, j := range t.joiners {
			j.Unpark()
		}
		t.joiners = nil
	})
	t.proc.Local = t
	rt.nodes[node].ThreadsSpawned++
	return t
}

// FromProc recovers the Thread a proc is running, or nil for bare procs.
func FromProc(p *sim.Proc) *Thread {
	t, _ := p.Local.(*Thread)
	return t
}

// ID returns the thread's machine-wide id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Proc exposes the underlying sim proc.
func (t *Thread) Proc() *sim.Proc { return t.proc }

// Runtime returns the machine the thread runs on.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Node returns the node the thread is currently located on.
func (t *Thread) Node() int { return t.node }

// StackSize returns the thread's stack size in bytes.
func (t *Thread) StackSize() int { return t.stackSize }

// Migrations returns how many times the thread has migrated.
func (t *Thread) Migrations() int { return t.migrations }

// Now returns the current virtual time.
func (t *Thread) Now() sim.Time { return t.proc.Now() }

// Advance consumes virtual time without occupying a CPU (waiting, message
// latencies charged by lower layers, etc.).
func (t *Thread) Advance(d sim.Duration) { t.proc.Advance(d) }

// Compute charges d of CPU time on the thread's current node. Threads
// sharing a node serialize here, which is how the load imbalance effects of
// Section 4 (Figure 4) arise. Compute boundaries are safe points: a pending
// balancer migration is honoured before the work is charged.
func (t *Thread) Compute(d sim.Duration) {
	t.checkPreempt()
	t.rt.nodes[t.node].CPU.Use(t.proc, d)
}

// Yield lets other runnable threads at the same virtual time proceed. Yield
// is a safe point for preemptive migration.
func (t *Thread) Yield() {
	t.checkPreempt()
	t.proc.Yield()
}

// SetTLS stores a thread-local value under key.
func (t *Thread) SetTLS(key string, v interface{}) {
	if t.tls == nil {
		t.tls = make(map[string]interface{})
	}
	t.tls[key] = v
}

// TLS fetches a thread-local value.
func (t *Thread) TLS(key string) interface{} {
	if t.tls == nil {
		return nil
	}
	return t.tls[key]
}

// MigrateTo moves the thread to node dest, charging the migration latency of
// the src->dest link for its stack plus descriptor, as the PM2 migration
// mechanism does. The iso-address guarantee means the thread resumes with
// all its pointers valid. Migrating to the current node is a no-op.
func (t *Thread) MigrateTo(dest int) {
	if dest == t.node {
		return
	}
	t.rt.Node(dest) // validate
	src := t.node
	if t.rt.se != nil {
		if t.rt.nodeShard[src] != t.rt.nodeShard[dest] {
			// The thread's goroutine is wired to its shard's event loop;
			// re-homing it would move a running proc between calendars.
			panic(fmt.Sprintf("pm2: thread %q cannot migrate %d->%d across shards (%d->%d)",
				t.name, src, dest, t.rt.nodeShard[src], t.rt.nodeShard[dest]))
		}
		t.rt.nodes[src].dropThread(t)
		t.rt.nodes[dest].threads = append(t.rt.nodes[dest].threads, t)
	}
	cost := t.rt.Link(src, dest).Migration(t.stackSize + DescriptorBytes)
	t.proc.Advance(cost)
	t.node = dest
	t.migrations++
	t.rt.nodes[src].MigrationsOut++
	t.rt.nodes[dest].MigrationsIn++
}

// Join blocks until other finishes. A thread must not join itself.
func (t *Thread) Join(other *Thread) {
	if other == t {
		panic(fmt.Sprintf("pm2: thread %q joining itself", t.name))
	}
	if other.done {
		return
	}
	other.joiners = append(other.joiners, t.proc)
	t.proc.Park("join " + other.name)
}

// Done reports whether the thread's function has returned.
func (t *Thread) Done() bool { return t.done }
