package tune

import (
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dsmpm2"
)

// TestGridProtocolsMatchRegistry: the tuner's protocol axis must cover
// exactly the registered protocols — a protocol added to the registry
// without a grid entry would silently fall out of every sweep.
func TestGridProtocolsMatchRegistry(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2})
	want := append([]string(nil), sys.ProtocolNames()...)
	got := append([]string(nil), Protocols...)
	sort.Strings(want)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tune.Protocols = %v,\nregistry has %v", got, want)
	}
}

// TestRecordDeterministic: recording the same workload + seed twice must
// yield identical digests and baseline metrics — the property every cache
// lookup rests on.
func TestRecordDeterministic(t *testing.T) {
	for _, wl := range Workloads {
		a, err := Record(wl, 9)
		if err != nil {
			t.Fatalf("record %s: %v", wl, err)
		}
		b, err := Record(wl, 9)
		if err != nil {
			t.Fatalf("re-record %s: %v", wl, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: recordings differ:\n%+v\n%+v", wl, a, b)
		}
		if !a.Baseline.Correct {
			t.Errorf("%s: baseline cell incorrect: %+v", wl, a.Baseline)
		}
		c, err := Record(wl, 10)
		if err != nil {
			t.Fatalf("record %s seed 10: %v", wl, err)
		}
		if c.WorkloadDigest == a.WorkloadDigest {
			t.Errorf("%s: different seeds share a workload digest", wl)
		}
	}
}

// sweepOpts is the small jacobi grid the determinism tests sweep: 3
// protocols x full placement/topology/comm axes = 36 cells.
func sweepOpts(workers int, cacheDir string) Options {
	return Options{
		Workers:   workers,
		CacheDir:  cacheDir,
		Protocols: []string{"li_hudak", "hbrc_mw", "adaptive"},
	}
}

// TestSweepDeterministicAcrossWorkers: the ranked report must be
// byte-identical whatever the worker-pool size — host scheduling may decide
// when a cell runs, never what it measures or where it ranks.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	rec, err := Record("jacobi", 9)
	if err != nil {
		t.Fatal(err)
	}
	var golden []byte
	for _, workers := range []int{1, 4, 16} {
		rep, err := Sweep(rec, sweepOpts(workers, ""))
		if err != nil {
			t.Fatalf("sweep workers=%d: %v", workers, err)
		}
		if rep.GridSize != 36 || rep.RanCells != 36 || rep.CachedCells != 0 {
			t.Fatalf("workers=%d: grid %d ran %d cached %d, want 36/36/0",
				workers, rep.GridSize, rep.RanCells, rep.CachedCells)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = raw
		} else if string(raw) != string(golden) {
			t.Fatalf("workers=%d: report differs from workers=1 report", workers)
		}
	}
}

// TestSweepCacheHit: a second sweep over a warm cache must run zero cells
// and produce the identical ranking, and the ledger must be keyed by the
// recording (a different seed gets no hits).
func TestSweepCacheHit(t *testing.T) {
	dir := t.TempDir()
	rec, err := Record("jacobi", 9)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Sweep(rec, sweepOpts(0, dir))
	if err != nil {
		t.Fatal(err)
	}
	if cold.RanCells != cold.GridSize || cold.CachedCells != 0 {
		t.Fatalf("cold sweep ran %d/%d cached %d", cold.RanCells, cold.GridSize, cold.CachedCells)
	}
	warm, err := Sweep(rec, sweepOpts(0, dir))
	if err != nil {
		t.Fatal(err)
	}
	if warm.RanCells != 0 || warm.CachedCells != warm.GridSize {
		t.Fatalf("warm sweep ran %d, cached %d of %d — want 0 runs",
			warm.RanCells, warm.CachedCells, warm.GridSize)
	}
	if !reflect.DeepEqual(cold.Cells, warm.Cells) {
		t.Fatal("warm sweep's cells are not bit-identical to the cold sweep's")
	}
	if !reflect.DeepEqual(cold.Winner, warm.Winner) || cold.Prior != warm.Prior {
		t.Fatal("warm sweep's winner/prior diverged")
	}

	// A corrupt ledger must be ignored, not trusted or fatal.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected exactly one ledger file, got %v (err %v)", ents, err)
	}
	if err := os.WriteFile(dir+"/"+ents[0].Name(), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := Sweep(rec, sweepOpts(0, dir))
	if err != nil {
		t.Fatal(err)
	}
	if again.RanCells != again.GridSize {
		t.Fatalf("corrupt ledger served %d cached cells", again.CachedCells)
	}

	// A different recording keys a different ledger.
	rec10, err := Record("jacobi", 10)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Sweep(rec10, sweepOpts(0, dir))
	if err != nil {
		t.Fatal(err)
	}
	if other.CachedCells != 0 {
		t.Fatalf("seed-10 sweep got %d cache hits from the seed-9 ledger", other.CachedCells)
	}
}

// TestSweepRankingShape: the full ranking's invariants — ranks are 1..n,
// correct cells precede incorrect ones in non-decreasing virtual time, the
// winner is rank 1 and beats the misplaced baseline, and the prior restates
// the winner.
func TestSweepRankingShape(t *testing.T) {
	rec, err := Record("jacobi", 9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep(rec, sweepOpts(0, ""))
	if err != nil {
		t.Fatal(err)
	}
	seenIncorrect := false
	lastMS := -1.0
	for i, c := range rep.Cells {
		if c.Rank != i+1 {
			t.Fatalf("cell %d has rank %d", i, c.Rank)
		}
		if c.Correct {
			if seenIncorrect {
				t.Fatalf("correct cell %s ranked after an incorrect one", c.Key())
			}
			if c.VirtualMS < lastMS {
				t.Fatalf("ranking not by virtual time at %s", c.Key())
			}
			lastMS = c.VirtualMS
		} else {
			seenIncorrect = true
		}
	}
	if rep.Winner.Rank != 1 || !rep.Winner.Correct {
		t.Fatalf("winner %+v is not the rank-1 correct cell", rep.Winner)
	}
	if rep.Winner.VirtualMS > rep.Baseline.VirtualMS {
		t.Fatalf("winner (%.3f ms) does not beat the misplaced baseline (%.3f ms)",
			rep.Winner.VirtualMS, rep.Baseline.VirtualMS)
	}
	if rep.Prior.Protocol != rep.Winner.Protocol || rep.Prior.Placement != rep.Winner.Placement ||
		rep.Prior.Comm != rep.Winner.Comm || rep.Prior.Workload != "jacobi" {
		t.Fatalf("prior %+v does not restate the winner %+v", rep.Prior, rep.Winner)
	}

	// The recommendation must actually feed back: a system built with the
	// prior reports the page-policy prior installed.
	prior := rep.Prior
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, TunedPrior: &prior})
	if !sys.DSM().TunedPagePrior() {
		t.Fatal("sweep prior did not install the page-policy prior")
	}
}

// TestBadGridAxisRejected: unknown grid-subset values must be rejected with
// an error naming the valid set (dsmbench turns this into usage exit 2).
func TestBadGridAxisRejected(t *testing.T) {
	rec, err := Record("jacobi", 9)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Protocols: []string{"nope"}}, "li_hudak"},
		{Options{Topologies: []string{"mesh"}}, "uniform"},
		{Options{Placements: []string{"wild"}}, "misplaced"},
		{Options{Comms: []string{"zip"}}, "batched"},
	}
	for _, c := range cases {
		if _, err := Sweep(rec, c.opts); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Sweep(%+v) error = %v, want it to name %q", c.opts, err, c.want)
		}
	}
	if _, err := Record("bogus", 1); err == nil || !strings.Contains(err.Error(), "jacobi") {
		t.Errorf("Record(bogus) error = %v, want the workload list", err)
	}
}

// TestMetricsEqualIgnoresRank pins the cache-identity helper.
func TestMetricsEqualIgnoresRank(t *testing.T) {
	a := CellResult{Cell: Cell{Protocol: "li_hudak"}, Rank: 1, VirtualMS: 2}
	b := a
	b.Rank = 7
	if !metricsEqual(a, b) {
		t.Error("rank difference broke metric equality")
	}
	b.VirtualMS = 3
	if metricsEqual(a, b) {
		t.Error("metric difference not detected")
	}
}
