package tune

import "testing"

// TestFullGridAllWorkloads is the tuner's acceptance sweep: the complete
// default grid (11 protocols x 2 topologies x 3 placements x 2 comm paths =
// 132 cells, well past the 40-cell floor) for every recordable workload. A
// majority of cells must run the workload correctly, and the winner must beat
// the misplaced recording baseline — otherwise the recommendation is useless.
func TestFullGridAllWorkloads(t *testing.T) {
	for _, wl := range Workloads {
		rec, err := Record(wl, 9)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		rep, err := Sweep(rec, Options{})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if rep.GridSize != 11*2*3*2 {
			t.Fatalf("%s: grid has %d cells, want 132", wl, rep.GridSize)
		}
		correct := 0
		for _, c := range rep.Cells {
			if c.Correct {
				correct++
			}
		}
		if correct < rep.GridSize/2 {
			t.Errorf("%s: only %d of %d cells ran correctly", wl, correct, rep.GridSize)
		}
		if !rep.Winner.Correct || rep.Winner.VirtualMS > rep.Baseline.VirtualMS {
			t.Errorf("%s: winner %s (%.3f ms) does not beat the baseline (%.3f ms)",
				wl, rep.Winner.Key(), rep.Winner.VirtualMS, rep.Baseline.VirtualMS)
		}
		t.Logf("%s: %d/%d correct, winner %s %.3fms (baseline %.3fms)",
			wl, correct, rep.GridSize, rep.Winner.Key(), rep.Winner.VirtualMS, rep.Baseline.VirtualMS)
	}
}
