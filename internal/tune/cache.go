package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The cell cache: one JSON ledger per recording, keyed by the recording's
// digests. A ledger is only ever consulted when BOTH digests match — a
// changed workload configuration or a changed recording observation gets a
// fresh ledger file, so a cache hit is by construction a bit-identical
// re-simulation of the same cell. Ranks are not cached (they are a per-sweep
// property of the grid subset); everything else in a CellResult is.

// ledger is the on-disk cache format.
type ledger struct {
	ConfigDigest   string                `json:"config_digest"`
	WorkloadDigest string                `json:"workload_digest"`
	Cells          map[string]CellResult `json:"cells"`
}

// ledgerPath names the recording's ledger file inside dir.
func ledgerPath(dir string, rec *Recording) string {
	return filepath.Join(dir, fmt.Sprintf("tune-%s-%s.json", rec.Workload, rec.WorkloadDigest[:16]))
}

// loadLedger reads the recording's ledger; a missing, unreadable, corrupt
// or digest-mismatched ledger yields an empty one (the sweep then re-runs
// and rewrites — the cache can lose, never lie).
func loadLedger(dir string, rec *Recording) ledger {
	empty := ledger{Cells: map[string]CellResult{}}
	if dir == "" {
		return empty
	}
	raw, err := os.ReadFile(ledgerPath(dir, rec))
	if err != nil {
		return empty
	}
	var led ledger
	if json.Unmarshal(raw, &led) != nil ||
		led.ConfigDigest != rec.ConfigDigest ||
		led.WorkloadDigest != rec.WorkloadDigest ||
		led.Cells == nil {
		return empty
	}
	return led
}

// saveLedger merges the sweep's results into the recording's ledger and
// writes it atomically (temp file + rename), so a crashed sweep can never
// leave a truncated ledger behind.
func saveLedger(dir string, rec *Recording, results []CellResult) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tune: creating cache dir: %w", err)
	}
	led := loadLedger(dir, rec)
	led.ConfigDigest = rec.ConfigDigest
	led.WorkloadDigest = rec.WorkloadDigest
	for _, r := range results {
		r.Rank = 0 // ranks are per-sweep, never cached
		led.Cells[r.Key()] = r
	}
	raw, err := json.MarshalIndent(&led, "", " ")
	if err != nil {
		return err
	}
	path := ledgerPath(dir, rec)
	tmp, err := os.CreateTemp(dir, ".tune-*")
	if err != nil {
		return fmt.Errorf("tune: writing ledger: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("tune: writing ledger: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tune: writing ledger: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}
