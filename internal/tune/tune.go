// Package tune is the what-if protocol auto-tuner: record one run of a
// workload, then re-simulate the whole configuration search space —
// {protocol × topology × home placement × communication batching} — as
// parallel host-level runs, and rank the cells by virtual elapsed time.
//
// The point of a deterministic simulator is exactly that this is possible:
// every cell is an independent dsmpm2.System replaying the identical
// workload (same seed, same operation sequence), so the grid's numbers are
// exact re-simulations, not noisy re-measurements, and two sweeps of one
// recording are bit-identical whatever the host parallelism. Cell results
// are cached on disk in a JSON ledger keyed by the recording's digests, so
// a repeated sweep re-runs nothing it has already measured, and the winner
// is fed back to the platform as a dsmpm2.TunedPrior — the adaptive
// protocol's cold-start evidence (see protocols/adaptive.go).
package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/apps/kvstore"
	"dsmpm2/internal/apps/matmul"
)

// The grid axes. Protocols must match the registry (protocols.Register);
// a tune_test cross-checks the list against a live System.
var (
	Protocols = []string{
		"li_hudak", "migrate_thread", "erc_sw", "hbrc_mw", "java_ic",
		"java_pf", "hybrid", "adaptive", "li_fixed", "li_central", "entry_mw",
	}
	Topologies = []string{"uniform", "hier"}
	Placements = []string{"static", "misplaced", "adaptive"}
	Comms      = []string{"batched", "unbatched"}
	Workloads  = []string{"jacobi", "matmul", "serve"}
)

// Cell is one grid point: a complete platform configuration for the
// recorded workload.
type Cell struct {
	Protocol  string `json:"protocol"`
	Topology  string `json:"topology"`
	Placement string `json:"placement"`
	Comm      string `json:"comm"`
}

// Key is the cell's canonical identity, used as the cache-ledger key and
// the final ranking tiebreak.
func (c Cell) Key() string {
	return c.Protocol + "/" + c.Topology + "/" + c.Placement + "/" + c.Comm
}

// CellResult is one re-simulated cell. A cell whose run fails (error or
// panic) or produces a wrong checksum is kept in the report — marked
// incorrect and ranked after every correct cell — because "this protocol
// cannot run this workload" is itself a tuning result.
type CellResult struct {
	Cell
	// Rank is 1-based within the sweep's ranking; assigned fresh each
	// sweep (cached metrics never carry a stale rank).
	Rank    int    `json:"rank"`
	Correct bool   `json:"correct"`
	Err     string `json:"error,omitempty"`
	// VirtualMS is the workload's simulated duration — the ranking's
	// primary key.
	VirtualMS      float64 `json:"virtual_ms"`
	Envelopes      int64   `json:"envelopes"`
	RemoteFetches  int64   `json:"remote_fetches"`
	HomeMigrations int64   `json:"home_migrations"`
	// P99 is the get-latency tail where the workload keeps histograms
	// (serve); 0 elsewhere.
	P99 dsmpm2.Duration `json:"p99_ns,omitempty"`
}

// metricsEqual reports whether two results carry identical measurements
// (everything but the per-sweep rank).
func metricsEqual(a, b CellResult) bool {
	a.Rank, b.Rank = 0, 0
	return a == b
}

// Recording is the fingerprinted recording run the sweep re-simulates: the
// workload's as-recorded cell, its measured metrics (the sweep's baseline),
// and the digests that key the cache ledger.
type Recording struct {
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	// ConfigDigest hashes the canonical description of the pinned workload
	// configuration; WorkloadDigest additionally folds in what the
	// recording run observed (fingerprint, checksum, span count), so a
	// ledger is valid only for byte-identical workload behavior.
	ConfigDigest   string `json:"config_digest"`
	WorkloadDigest string `json:"workload_digest"`
	// Baseline is the recording run's own cell and metrics — the
	// configuration the workload was recorded under, which a recommendation
	// must beat.
	Baseline CellResult `json:"baseline"`
	// Fingerprint is the recording run's trace digest
	// (dsmpm2.System.Fingerprint); Spans counts its recorded trace spans
	// (workloads with span recording only).
	Fingerprint string `json:"fingerprint"`
	Spans       int    `json:"spans,omitempty"`
}

// Options tunes a sweep.
type Options struct {
	// Workers bounds the host-level parallelism; <= 0 uses runtime.NumCPU().
	Workers int
	// CacheDir holds the JSON cell ledgers; empty disables caching.
	CacheDir string
	// Grid subsets: nil/empty selects every value of the axis. Unknown
	// values are rejected by Sweep with an error naming the valid set.
	Protocols  []string
	Topologies []string
	Placements []string
	Comms      []string
}

// Report is a completed sweep: every cell ranked, the winner, and the
// prior to feed back into dsmpm2.Config.TunedPrior.
type Report struct {
	Workload       string `json:"workload"`
	Seed           int64  `json:"seed"`
	ConfigDigest   string `json:"config_digest"`
	WorkloadDigest string `json:"workload_digest"`
	// GridSize = RanCells + CachedCells: how many cells the sweep ran this
	// time versus served bit-identically from the ledger.
	GridSize    int `json:"grid_size"`
	RanCells    int `json:"ran_cells"`
	CachedCells int `json:"cached_cells"`
	// Baseline is the recording run's own cell; Winner is the top-ranked
	// correct cell; Prior is Winner as a feed-back configuration.
	Baseline CellResult        `json:"baseline"`
	Winner   CellResult        `json:"winner"`
	Prior    dsmpm2.TunedPrior `json:"prior"`
	// Cells is the full grid in rank order.
	Cells []CellResult `json:"cells"`
}

// workload is one tunable application: a pinned configuration (so the grid
// re-simulates a known quantity of work) plus the cell-to-config mapping.
type workload struct {
	name string
	// defaultProtocol is the as-recorded protocol of the baseline cell.
	defaultProtocol string
	// describe renders the canonical pinned configuration for ConfigDigest.
	describe func(seed int64) string
	// run executes one cell; spans > 0 only when rec is set and the app
	// records trace spans.
	run func(seed int64, c Cell, rec bool) (res CellResult, fingerprint string, spans int, err error)
}

// baselineCell is the as-recorded configuration every workload starts
// from: uniform network, deliberately misplaced static homes, batched comm
// — the placement story of the adapt/serve experiments.
func (w workload) baselineCell() Cell {
	return Cell{Protocol: w.defaultProtocol, Topology: "uniform", Placement: "misplaced", Comm: "batched"}
}

// hierTopology is the sweep's two-cluster heterogeneous topology.
func hierTopology(nodes int) dsmpm2.Topology {
	return dsmpm2.HierarchicalTopology(
		dsmpm2.EvenClusters(nodes, 2), dsmpm2.BIPMyrinet, dsmpm2.TCPFastEthernet)
}

// The pinned workload dimensions: small enough that a full 132-cell grid
// sweeps in seconds, large enough that placement and protocol choices
// separate clearly.
const (
	jacobiN, jacobiIters, jacobiNodes = 16, 4, 8
	matmulN, matmulNodes              = 12, 8
	serveNodes, serveBuckets          = 4, 16
	serveKeys, serveRequests          = 256, 500
	serveEpochs, servePhases          = 5, 2
)

func jacobiWorkload() workload {
	return workload{
		name:            "jacobi",
		defaultProtocol: "li_hudak",
		describe: func(seed int64) string {
			return fmt.Sprintf("jacobi n=%d iters=%d nodes=%d seed=%d",
				jacobiN, jacobiIters, jacobiNodes, seed)
		},
		run: func(seed int64, c Cell, rec bool) (CellResult, string, int, error) {
			cfg := jacobi.Config{
				N: jacobiN, Iterations: jacobiIters, Nodes: jacobiNodes,
				Protocol: c.Protocol, Seed: seed, Trace: rec,
			}
			applyCell(c, jacobiNodes, &cfg.Topology, &cfg.Network,
				&cfg.MisplaceHomes, &cfg.AdaptiveHomes, &cfg.Unbatched)
			res, err := jacobi.Run(cfg)
			if err != nil {
				return CellResult{Cell: c}, "", 0, err
			}
			out := cellMetrics(c, int64(res.Elapsed), res.Stats,
				res.Checksum == jacobi.SolveSerial(jacobiN, jacobiIters), 0)
			spans := 0
			if rec && res.System.Trace() != nil {
				spans = res.System.Trace().Len()
			}
			return out, res.System.Fingerprint(), spans, nil
		},
	}
}

func matmulWorkload() workload {
	return workload{
		name:            "matmul",
		defaultProtocol: "li_hudak",
		describe: func(seed int64) string {
			return fmt.Sprintf("matmul n=%d nodes=%d seed=%d", matmulN, matmulNodes, seed)
		},
		run: func(seed int64, c Cell, rec bool) (CellResult, string, int, error) {
			cfg := matmul.Config{
				N: matmulN, Nodes: matmulNodes, Protocol: c.Protocol, Seed: seed,
			}
			applyCell(c, matmulNodes, &cfg.Topology, &cfg.Network,
				&cfg.MisplaceHomes, &cfg.AdaptiveHomes, &cfg.Unbatched)
			res, err := matmul.Run(cfg)
			if err != nil {
				return CellResult{Cell: c}, "", 0, err
			}
			out := cellMetrics(c, int64(res.Elapsed), res.Stats,
				res.Checksum == matmul.SolveSerial(matmulN, seed), 0)
			return out, res.System.Fingerprint(), 0, nil
		},
	}
}

func serveWorkload() workload {
	return workload{
		name:            "serve",
		defaultProtocol: "entry_mw",
		describe: func(seed int64) string {
			return fmt.Sprintf("serve nodes=%d buckets=%d keys=%d requests=%d epochs=%d phases=%d seed=%d",
				serveNodes, serveBuckets, serveKeys, serveRequests, serveEpochs, servePhases, seed)
		},
		run: func(seed int64, c Cell, rec bool) (CellResult, string, int, error) {
			cfg := kvstore.Config{
				Nodes: serveNodes, Buckets: serveBuckets, Keys: serveKeys,
				Requests: serveRequests, Epochs: serveEpochs, Phases: servePhases,
				Protocol: c.Protocol, Seed: seed,
			}
			applyCell(c, serveNodes, &cfg.Topology, &cfg.Network,
				&cfg.MisplaceHomes, &cfg.AdaptiveHomes, &cfg.Unbatched)
			res, err := kvstore.Run(cfg)
			if err != nil {
				return CellResult{Cell: c}, "", 0, err
			}
			oracle, _, err := kvstore.ServeSerial(cfg)
			if err != nil {
				return CellResult{Cell: c}, "", 0, err
			}
			out := cellMetrics(c, int64(res.Elapsed), res.Stats,
				res.Checksum == oracle, res.Op("get").P99)
			return out, res.System.Fingerprint(), 0, nil
		},
	}
}

// applyCell translates the cell's axes onto an app config's shared knobs.
// "static" keeps the app's natural homes; "misplaced" parks them on node 0;
// "adaptive" misplaces them and lets the profiler re-home at epoch barriers
// (the placement vocabulary of the adapt and serve experiments).
func applyCell(c Cell, nodes int, topo *dsmpm2.Topology, network **dsmpm2.NetworkProfile,
	misplace, adaptive, unbatched *bool) {
	switch c.Topology {
	case "hier":
		*topo = hierTopology(nodes)
	default:
		*network = dsmpm2.BIPMyrinet
	}
	*misplace = c.Placement == "misplaced" || c.Placement == "adaptive"
	*adaptive = c.Placement == "adaptive"
	*unbatched = c.Comm == "unbatched"
}

// cellMetrics folds one run's outcome into a CellResult.
func cellMetrics(c Cell, elapsed int64, st dsmpm2.Stats, correct bool, p99 dsmpm2.Duration) CellResult {
	return CellResult{
		Cell:           c,
		Correct:        correct,
		VirtualMS:      float64(elapsed) / 1e6,
		Envelopes:      st.Envelopes,
		RemoteFetches:  st.RemoteFetches,
		HomeMigrations: st.HomeMigrations,
		P99:            p99,
	}
}

// lookupWorkload resolves a workload name.
func lookupWorkload(name string) (workload, error) {
	switch name {
	case "jacobi":
		return jacobiWorkload(), nil
	case "matmul":
		return matmulWorkload(), nil
	case "serve":
		return serveWorkload(), nil
	}
	return workload{}, fmt.Errorf("tune: unknown workload %q (valid: %v)", name, Workloads)
}

// Record drives the recording run: the workload under its as-recorded
// baseline cell, with span tracing where the app supports it, and computes
// the digests that key every later sweep and cache lookup.
func Record(name string, seed int64) (*Recording, error) {
	w, err := lookupWorkload(name)
	if err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = 1
	}
	base := w.baselineCell()
	res, fp, spans, err := runCellGuarded(w, seed, base, true)
	if err != nil {
		return nil, fmt.Errorf("tune: recording run of %s: %w", name, err)
	}
	cfgSum := sha256.Sum256([]byte(w.describe(seed)))
	rec := &Recording{
		Workload:     name,
		Seed:         seed,
		ConfigDigest: hex.EncodeToString(cfgSum[:]),
		Baseline:     res,
		Fingerprint:  fp,
		Spans:        spans,
	}
	wlSum := sha256.Sum256([]byte(rec.ConfigDigest + "|" + fp + "|" + fmt.Sprint(spans)))
	rec.WorkloadDigest = hex.EncodeToString(wlSum[:])
	return rec, nil
}

// runCellGuarded runs one cell, converting a panic anywhere inside the
// simulated run into an error: a protocol that cannot execute the workload
// must become a ranked incorrect cell, never take down the sweep.
func runCellGuarded(w workload, seed int64, c Cell, rec bool) (res CellResult, fp string, spans int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return w.run(seed, c, rec)
}

// subset returns the validated axis subset: nil/empty keeps every value,
// anything not in valid is an error naming the valid set.
func subset(axis string, want, valid []string) ([]string, error) {
	if len(want) == 0 {
		return valid, nil
	}
	ok := make(map[string]bool, len(valid))
	for _, v := range valid {
		ok[v] = true
	}
	for _, v := range want {
		if !ok[v] {
			return nil, fmt.Errorf("tune: unknown %s %q (valid: %v)", axis, v, valid)
		}
	}
	return want, nil
}

// buildGrid enumerates the sweep's cells in canonical axis order.
func buildGrid(opts Options) ([]Cell, error) {
	protos, err := subset("protocol", opts.Protocols, Protocols)
	if err != nil {
		return nil, err
	}
	topos, err := subset("topology", opts.Topologies, Topologies)
	if err != nil {
		return nil, err
	}
	places, err := subset("placement", opts.Placements, Placements)
	if err != nil {
		return nil, err
	}
	comms, err := subset("comm", opts.Comms, Comms)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, p := range protos {
		for _, t := range topos {
			for _, pl := range places {
				for _, cm := range comms {
					cells = append(cells, Cell{Protocol: p, Topology: t, Placement: pl, Comm: cm})
				}
			}
		}
	}
	return cells, nil
}

// rankLess is the ranking's total order: correct cells first by virtual
// elapsed, then fewer envelopes, fewer remote fetches, lower p99, and
// finally the cell key, so the order is deterministic however the cells
// were computed. Incorrect cells sort after every correct one, by key.
func rankLess(a, b CellResult) bool {
	if a.Correct != b.Correct {
		return a.Correct
	}
	if !a.Correct {
		return a.Key() < b.Key()
	}
	if a.VirtualMS != b.VirtualMS {
		return a.VirtualMS < b.VirtualMS
	}
	if a.Envelopes != b.Envelopes {
		return a.Envelopes < b.Envelopes
	}
	if a.RemoteFetches != b.RemoteFetches {
		return a.RemoteFetches < b.RemoteFetches
	}
	if a.P99 != b.P99 {
		return a.P99 < b.P99
	}
	return a.Key() < b.Key()
}

// Sweep re-simulates the recording across the grid: cached cells are served
// bit-identically from the ledger, the rest run on a pool of Workers host
// goroutines (each cell an independent deterministic System), and the
// merged results are ranked into a Report. The ranking is a pure function
// of the recording and the grid subset — worker count, cache state and host
// scheduling cannot change a single byte of it.
func Sweep(rec *Recording, opts Options) (*Report, error) {
	w, err := lookupWorkload(rec.Workload)
	if err != nil {
		return nil, err
	}
	cells, err := buildGrid(opts)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	led := loadLedger(opts.CacheDir, rec)
	results := make([]CellResult, len(cells))
	todo := make([]int, 0, len(cells))
	cached := 0
	for i, c := range cells {
		if hit, ok := led.Cells[c.Key()]; ok {
			results[i] = hit
			cached++
		} else {
			todo = append(todo, i)
		}
	}

	// The pool writes into index-addressed slots: completion order is
	// host-dependent, the result layout is not.
	work := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, _, _, err := runCellGuarded(w, rec.Seed, cells[i], false)
				if err != nil {
					res = CellResult{Cell: cells[i], Err: err.Error()}
				}
				results[i] = res
			}
		}()
	}
	for _, i := range todo {
		work <- i
	}
	close(work)
	wg.Wait()

	if err := saveLedger(opts.CacheDir, rec, results); err != nil {
		return nil, err
	}

	ranked := append([]CellResult(nil), results...)
	sort.SliceStable(ranked, func(i, j int) bool { return rankLess(ranked[i], ranked[j]) })
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
	rep := &Report{
		Workload:       rec.Workload,
		Seed:           rec.Seed,
		ConfigDigest:   rec.ConfigDigest,
		WorkloadDigest: rec.WorkloadDigest,
		GridSize:       len(cells),
		RanCells:       len(todo),
		CachedCells:    cached,
		Baseline:       rec.Baseline,
		Cells:          ranked,
	}
	if len(ranked) > 0 && ranked[0].Correct {
		rep.Winner = ranked[0]
		rep.Prior = dsmpm2.TunedPrior{
			Protocol:  rep.Winner.Protocol,
			Placement: rep.Winner.Placement,
			Comm:      rep.Winner.Comm,
			Workload:  rec.Workload,
		}
	}
	return rep, nil
}
