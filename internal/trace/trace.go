// Package trace implements DSM-PM2's post-mortem monitoring support: "very
// precise post-mortem monitoring tools are available in the PM2 platform,
// providing the user with valuable information on the time spent within each
// elementary function" (Section 4).
//
// The runtime records spans — named intervals of virtual time attributed to
// a node and thread — into an in-memory log; after the run the log can be
// aggregated into a per-function time breakdown or exported as JSON for the
// dsmtrace analyzer.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dsmpm2/internal/sim"
)

// Span is one timed invocation of an elementary function.
type Span struct {
	Name   string   `json:"name"`
	Node   int      `json:"node"`
	Thread string   `json:"thread"`
	Start  sim.Time `json:"start_ns"`
	End    sim.Time `json:"end_ns"`
}

// Duration returns the span's extent.
func (s *Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Log accumulates spans. On a single-loop machine it is used from simulation
// context only (one simulated thread at a time), so the shared Spans slice
// needs no locking. On a sharded machine (dsmpm2.Config.Shards > 1) every
// shard's event loop runs on its own host goroutine, so concurrent Add calls
// on one slice would race: a sharded log (NewShardedLog) instead records into
// per-shard slices — each appended only by its owning goroutine — and merges
// them canonically at read time. The merge orders by virtual time, never by
// host arrival: a host mutex would serialize the appends but order nothing in
// virtual time, so the merged view would differ run to run.
type Log struct {
	Spans   []Span `json:"spans"`
	enabled bool
	// perShard are the per-shard span logs of a sharded run (nil on a
	// single-loop machine). Shard i's slice is touched only by shard i's
	// event-loop goroutine.
	perShard [][]Span
}

// NewLog returns an enabled, empty log.
func NewLog() *Log { return &Log{enabled: true} }

// NewShardedLog returns an enabled log with one private span slice per
// kernel shard; record into it with AddShard.
func NewShardedLog(shards int) *Log {
	return &Log{enabled: true, perShard: make([][]Span, shards)}
}

// SetEnabled toggles recording; a disabled log drops spans.
func (l *Log) SetEnabled(on bool) { l.enabled = on }

// Enabled reports whether the log records spans.
func (l *Log) Enabled() bool { return l != nil && l.enabled }

// Add appends a completed span to the shared slice. Only for single-loop
// machines: concurrent shard goroutines must use AddShard.
func (l *Log) Add(s Span) {
	if l.Enabled() {
		l.Spans = append(l.Spans, s)
	}
}

// AddShard appends a completed span to shard's private log. On a log built
// with NewLog (no shards) it falls back to the shared slice.
func (l *Log) AddShard(shard int, s Span) {
	if !l.Enabled() {
		return
	}
	if l.perShard == nil {
		l.Spans = append(l.Spans, s)
		return
	}
	l.perShard[shard] = append(l.perShard[shard], s)
}

// Len reports the number of recorded spans across every shard.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	n := len(l.Spans)
	for _, sh := range l.perShard {
		n += len(sh)
	}
	return n
}

// All returns the recorded spans in canonical order. A single-loop log's
// spans are already in schedule order; a sharded log's per-shard slices are
// merged by virtual time (start, then end, node, thread, name) — a pure
// function of span content, so two runs that record the same spans produce
// the same merged view whatever the host interleaving was. The returned
// slice is shared for a single-loop log and freshly built for a sharded one;
// treat it as read-only.
func (l *Log) All() []Span {
	if l == nil {
		return nil
	}
	if l.perShard == nil {
		return l.Spans
	}
	out := make([]Span, 0, l.Len())
	out = append(out, l.Spans...)
	for _, sh := range l.perShard {
		out = append(out, sh...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		return a.Name < b.Name
	})
	return out
}

// FuncStat is the aggregated profile of one elementary function.
type FuncStat struct {
	Name  string
	Count int
	Total sim.Duration
	Min   sim.Duration
	Max   sim.Duration
}

// Mean returns the average span duration.
func (f *FuncStat) Mean() sim.Duration {
	if f.Count == 0 {
		return 0
	}
	return f.Total / sim.Duration(f.Count)
}

// Breakdown aggregates the log per function name, sorted by total time
// descending — the paper's "time spent within each elementary function".
func (l *Log) Breakdown() []FuncStat {
	byName := make(map[string]*FuncStat)
	spans := l.All()
	for i := range spans {
		s := &spans[i]
		st := byName[s.Name]
		if st == nil {
			st = &FuncStat{Name: s.Name, Min: s.Duration()}
			byName[s.Name] = st
		}
		d := s.Duration()
		st.Count++
		st.Total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	out := make([]FuncStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PerNode aggregates total traced time per node.
func (l *Log) PerNode() map[int]sim.Duration {
	out := make(map[int]sim.Duration)
	for _, s := range l.All() {
		out[s.Node] += s.Duration()
	}
	return out
}

// WriteJSON exports the log; a sharded log is written in its canonical
// merged order, so the wire form never depends on the shard layout.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&Log{Spans: l.All()})
}

// ReadJSON imports a log previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("trace: decoding log: %w", err)
	}
	l.enabled = true
	return &l, nil
}

// FormatBreakdown renders the per-function profile as an aligned text table.
func FormatBreakdown(stats []FuncStat, w io.Writer) {
	fmt.Fprintf(w, "%-24s %10s %14s %12s %12s %12s\n",
		"function", "calls", "total(us)", "mean(us)", "min(us)", "max(us)")
	for _, st := range stats {
		fmt.Fprintf(w, "%-24s %10d %14.1f %12.2f %12.2f %12.2f\n",
			st.Name, st.Count, st.Total.Microseconds(), st.Mean().Microseconds(),
			st.Min.Microseconds(), st.Max.Microseconds())
	}
}
