// Package trace implements DSM-PM2's post-mortem monitoring support: "very
// precise post-mortem monitoring tools are available in the PM2 platform,
// providing the user with valuable information on the time spent within each
// elementary function" (Section 4).
//
// The runtime records spans — named intervals of virtual time attributed to
// a node and thread — into an in-memory log; after the run the log can be
// aggregated into a per-function time breakdown or exported as JSON for the
// dsmtrace analyzer.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dsmpm2/internal/sim"
)

// Span is one timed invocation of an elementary function.
type Span struct {
	Name   string   `json:"name"`
	Node   int      `json:"node"`
	Thread string   `json:"thread"`
	Start  sim.Time `json:"start_ns"`
	End    sim.Time `json:"end_ns"`
}

// Duration returns the span's extent.
func (s *Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Log accumulates spans. It is used from simulation context only (one
// simulated thread at a time), so it needs no locking.
type Log struct {
	Spans   []Span `json:"spans"`
	enabled bool
}

// NewLog returns an enabled, empty log.
func NewLog() *Log { return &Log{enabled: true} }

// SetEnabled toggles recording; a disabled log drops spans.
func (l *Log) SetEnabled(on bool) { l.enabled = on }

// Enabled reports whether the log records spans.
func (l *Log) Enabled() bool { return l != nil && l.enabled }

// Add appends a completed span.
func (l *Log) Add(s Span) {
	if l.Enabled() {
		l.Spans = append(l.Spans, s)
	}
}

// Len reports the number of recorded spans.
func (l *Log) Len() int { return len(l.Spans) }

// FuncStat is the aggregated profile of one elementary function.
type FuncStat struct {
	Name  string
	Count int
	Total sim.Duration
	Min   sim.Duration
	Max   sim.Duration
}

// Mean returns the average span duration.
func (f *FuncStat) Mean() sim.Duration {
	if f.Count == 0 {
		return 0
	}
	return f.Total / sim.Duration(f.Count)
}

// Breakdown aggregates the log per function name, sorted by total time
// descending — the paper's "time spent within each elementary function".
func (l *Log) Breakdown() []FuncStat {
	byName := make(map[string]*FuncStat)
	for i := range l.Spans {
		s := &l.Spans[i]
		st := byName[s.Name]
		if st == nil {
			st = &FuncStat{Name: s.Name, Min: s.Duration()}
			byName[s.Name] = st
		}
		d := s.Duration()
		st.Count++
		st.Total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	out := make([]FuncStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PerNode aggregates total traced time per node.
func (l *Log) PerNode() map[int]sim.Duration {
	out := make(map[int]sim.Duration)
	for i := range l.Spans {
		out[l.Spans[i].Node] += l.Spans[i].Duration()
	}
	return out
}

// WriteJSON exports the log.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(l)
}

// ReadJSON imports a log previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("trace: decoding log: %w", err)
	}
	l.enabled = true
	return &l, nil
}

// FormatBreakdown renders the per-function profile as an aligned text table.
func FormatBreakdown(stats []FuncStat, w io.Writer) {
	fmt.Fprintf(w, "%-24s %10s %14s %12s %12s %12s\n",
		"function", "calls", "total(us)", "mean(us)", "min(us)", "max(us)")
	for _, st := range stats {
		fmt.Fprintf(w, "%-24s %10d %14.1f %12.2f %12.2f %12.2f\n",
			st.Name, st.Count, st.Total.Microseconds(), st.Mean().Microseconds(),
			st.Min.Microseconds(), st.Max.Microseconds())
	}
}
