package trace

import (
	"bytes"
	"strings"
	"testing"

	"dsmpm2/internal/sim"
)

func span(name string, node int, start, end sim.Time) Span {
	return Span{Name: name, Node: node, Thread: "t", Start: start, End: end}
}

func TestLogAddAndLen(t *testing.T) {
	l := NewLog()
	l.Add(span("a", 0, 0, 10))
	l.Add(span("b", 1, 5, 25))
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestDisabledLogDrops(t *testing.T) {
	l := NewLog()
	l.SetEnabled(false)
	l.Add(span("a", 0, 0, 10))
	if l.Len() != 0 {
		t.Fatal("disabled log recorded a span")
	}
	var nilLog *Log
	if nilLog.Enabled() {
		t.Fatal("nil log claims enabled")
	}
	nilLog.Add(span("a", 0, 0, 1)) // must not panic
}

func TestBreakdownAggregates(t *testing.T) {
	l := NewLog()
	l.Add(span("read", 0, 0, 10))
	l.Add(span("read", 0, 20, 50))
	l.Add(span("write", 1, 0, 5))
	stats := l.Breakdown()
	if len(stats) != 2 {
		t.Fatalf("breakdown entries = %d", len(stats))
	}
	// Sorted by total descending: read (40) first.
	if stats[0].Name != "read" || stats[0].Count != 2 || stats[0].Total != 40 {
		t.Fatalf("read stat = %+v", stats[0])
	}
	if stats[0].Min != 10 || stats[0].Max != 30 || stats[0].Mean() != 20 {
		t.Fatalf("read min/max/mean = %v/%v/%v", stats[0].Min, stats[0].Max, stats[0].Mean())
	}
}

func TestBreakdownTiesSortedByName(t *testing.T) {
	l := NewLog()
	l.Add(span("b", 0, 0, 10))
	l.Add(span("a", 0, 0, 10))
	stats := l.Breakdown()
	if stats[0].Name != "a" {
		t.Fatalf("tie order = %v, %v", stats[0].Name, stats[1].Name)
	}
}

func TestPerNode(t *testing.T) {
	l := NewLog()
	l.Add(span("x", 0, 0, 10))
	l.Add(span("y", 0, 0, 5))
	l.Add(span("z", 2, 0, 7))
	per := l.PerNode()
	if per[0] != 15 || per[2] != 7 {
		t.Fatalf("per node = %v", per)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := NewLog()
	l.Add(span("rpc", 3, 100, 250))
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Spans[0] != l.Spans[0] {
		t.Fatalf("round trip = %+v", got.Spans)
	}
	if !got.Enabled() {
		t.Fatal("decoded log not enabled")
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFormatBreakdown(t *testing.T) {
	l := NewLog()
	l.Add(span("fault", 0, 0, 11000))
	var buf bytes.Buffer
	FormatBreakdown(l.Breakdown(), &buf)
	out := buf.String()
	if !strings.Contains(out, "fault") || !strings.Contains(out, "11.0") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestMeanOfEmptyStat(t *testing.T) {
	var f FuncStat
	if f.Mean() != 0 {
		t.Fatal("empty mean not zero")
	}
}

func TestSpanDuration(t *testing.T) {
	s := span("x", 0, 10, 35)
	if s.Duration() != 25 {
		t.Fatalf("duration = %v", s.Duration())
	}
}
