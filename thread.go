package dsmpm2

import (
	"fmt"

	"dsmpm2/internal/pm2"
	"dsmpm2/internal/trace"
)

// Thread is an application thread running on the DSM platform. Its methods
// are the multithreaded DSM interface: typed shared accesses, object get/put
// primitives, cluster-wide synchronization, explicit migration, and compute
// accounting. When tracing is enabled every elementary operation is recorded
// as a span for post-mortem analysis.
type Thread struct {
	sys *System
	th  *pm2.Thread
}

// span wraps op in a trace record when tracing is on. On a sharded machine
// the span goes to the recording shard's private log — the shard that owns
// the thread's node, which is exactly the event-loop goroutine running this
// code (threads never migrate across shards), so no two goroutines ever
// append to the same slice.
func (t *Thread) span(name string, op func()) {
	tr := t.sys.tr
	if !tr.Enabled() {
		op()
		return
	}
	start := t.th.Now()
	op()
	sp := trace.Span{
		Name:   name,
		Node:   t.th.Node(),
		Thread: t.th.Name(),
		Start:  start,
		End:    t.th.Now(),
	}
	if rt := t.sys.rt; rt.Sharded() {
		tr.AddShard(rt.ShardOf(sp.Node), sp)
	} else {
		tr.Add(sp)
	}
}

// Node returns the node the thread currently runs on.
func (t *Thread) Node() int { return t.th.Node() }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.th.Name() }

// Now returns the current virtual time.
func (t *Thread) Now() Time { return t.th.Now() }

// Migrations reports how many times the thread has migrated.
func (t *Thread) Migrations() int { return t.th.Migrations() }

// Compute charges d of CPU time on the thread's current node; threads
// sharing a node serialize here.
func (t *Thread) Compute(d Duration) { t.span("compute", func() { t.th.Compute(d) }) }

// Sleep consumes virtual time without occupying a CPU.
func (t *Thread) Sleep(d Duration) { t.th.Advance(d) }

// MigrateTo moves the thread to another node explicitly, paying the
// stack-size-dependent migration latency.
func (t *Thread) MigrateTo(node int) { t.span("migrate", func() { t.th.MigrateTo(node) }) }

// Join blocks until other finishes.
func (t *Thread) Join(other *Thread) { t.th.Join(other.th) }

// Read copies shared memory at addr into buf.
func (t *Thread) Read(addr Addr, buf []byte) {
	t.span("dsm_read", func() { t.sys.dsm.Read(t.th, addr, buf) })
}

// Write copies buf into shared memory at addr.
func (t *Thread) Write(addr Addr, buf []byte) {
	t.span("dsm_write", func() { t.sys.dsm.Write(t.th, addr, buf) })
}

// ReadUint32 loads a shared little-endian uint32.
func (t *Thread) ReadUint32(addr Addr) (v uint32) {
	t.span("dsm_read", func() { v = t.sys.dsm.ReadUint32(t.th, addr) })
	return v
}

// WriteUint32 stores a shared little-endian uint32.
func (t *Thread) WriteUint32(addr Addr, v uint32) {
	t.span("dsm_write", func() { t.sys.dsm.WriteUint32(t.th, addr, v) })
}

// ReadUint64 loads a shared little-endian uint64.
func (t *Thread) ReadUint64(addr Addr) (v uint64) {
	t.span("dsm_read", func() { v = t.sys.dsm.ReadUint64(t.th, addr) })
	return v
}

// WriteUint64 stores a shared little-endian uint64.
func (t *Thread) WriteUint64(addr Addr, v uint64) {
	t.span("dsm_write", func() { t.sys.dsm.WriteUint64(t.th, addr, v) })
}

// ReadInt64 loads a shared int64.
func (t *Thread) ReadInt64(addr Addr) int64 { return int64(t.ReadUint64(addr)) }

// WriteInt64 stores a shared int64.
func (t *Thread) WriteInt64(addr Addr, v int64) { t.WriteUint64(addr, uint64(v)) }

// Get reads shared data through the protocol's get primitive (object
// programs; falls back to the paged path for non-object protocols).
func (t *Thread) Get(addr Addr, buf []byte) {
	t.span("get", func() { t.sys.dsm.Get(t.th, addr, buf) })
}

// Put writes shared data through the protocol's put primitive.
func (t *Thread) Put(addr Addr, buf []byte) {
	t.span("put", func() { t.sys.dsm.Put(t.th, addr, buf) })
}

// GetField reads field i of obj.
func (t *Thread) GetField(obj ObjRef, i int) (v uint64) {
	t.span("get", func() { v = t.sys.dsm.GetField(t.th, obj, i) })
	return v
}

// PutField writes field i of obj.
func (t *Thread) PutField(obj ObjRef, i int, v uint64) {
	t.span("put", func() { t.sys.dsm.PutField(t.th, obj, i, v) })
}

// Acquire takes a cluster-wide DSM lock, running the active protocols'
// acquire consistency actions.
func (t *Thread) Acquire(lock int) {
	t.span("lock_acquire", func() { t.sys.dsm.Acquire(t.th, lock) })
}

// Release runs the active protocols' release consistency actions, then
// releases the lock.
func (t *Thread) Release(lock int) {
	t.span("lock_release", func() { t.sys.dsm.Release(t.th, lock) })
}

// Barrier waits on a cluster-wide barrier (a release followed by an acquire
// for consistency purposes).
func (t *Thread) Barrier(bar int) {
	t.span("barrier", func() { t.sys.dsm.Barrier(t.th, bar) })
}

// CondWait atomically releases the condition's lock and blocks until
// signalled, then re-acquires the lock (Mesa semantics: re-check the
// predicate in a loop).
func (t *Thread) CondWait(cond int) {
	t.span("cond_wait", func() { t.sys.dsm.CondWait(t.th, cond) })
}

// CondSignal wakes the oldest waiter on the condition.
func (t *Thread) CondSignal(cond int) {
	t.span("cond_signal", func() { t.sys.dsm.CondSignal(t.th, cond) })
}

// CondBroadcast wakes every waiter on the condition.
func (t *Thread) CondBroadcast(cond int) {
	t.span("cond_signal", func() { t.sys.dsm.CondBroadcast(t.th, cond) })
}

// SwitchProtocol re-associates a shared area with another protocol (by
// name). The caller must guarantee the area is quiescent — no thread may
// touch it during the switch; bracket it with barriers (Section 2.3).
func (t *Thread) SwitchProtocol(base Addr, size int, protocol string) error {
	id, ok := t.sys.Protocol(protocol)
	if !ok {
		return fmt.Errorf("dsmpm2: unknown protocol %q", protocol)
	}
	return t.sys.dsm.SwitchProtocol(t.th, base, size, id)
}

// System returns the owning platform instance.
func (t *Thread) System() *System { return t.sys }

// PM2 exposes the underlying PM2 thread for advanced use.
func (t *Thread) PM2() *pm2.Thread { return t.th }
