package dsmpm2_test

import (
	"strings"
	"testing"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
)

// sessionConfig is the 16-node workload the round-trip sweep runs: small
// enough to re-run once per step, big enough that every node owns rows and
// every step moves real traffic.
func sessionConfig() jacobi.Config {
	return jacobi.Config{
		N: 16, Iterations: 3, Nodes: 16,
		Network:  dsmpm2.BIPMyrinet,
		Protocol: "hbrc_mw",
		Seed:     7,
	}
}

// runSession builds a session, runs steps, and returns it.
func runSession(t *testing.T, cfg jacobi.Config, steps int) *jacobi.Session {
	t.Helper()
	s, err := jacobi.NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return s
}

// finishFingerprint drives a session to its end and returns the trace
// fingerprint plus the checksum.
func finishFingerprint(t *testing.T, s *jacobi.Session) (string, float64) {
	t.Helper()
	if err := s.RunToEnd(); err != nil {
		t.Fatalf("RunToEnd: %v", err)
	}
	fp := s.System().Fingerprint()
	res, err := s.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return fp, res.Checksum
}

// TestCheckpointRoundTripSweep is the subsystem's core property: snapshot at
// step k, restore into a fresh system, run to the end — the trace
// fingerprint must be bit-identical to the unbroken run's, for every k in
// the whole run.
func TestCheckpointRoundTripSweep(t *testing.T) {
	cfg := sessionConfig()
	ref := runSession(t, cfg, 0)
	refFP, refSum := finishFingerprint(t, ref)
	want := jacobi.SolveSerial(cfg.N, cfg.Iterations)
	if refSum != want {
		t.Fatalf("reference checksum %v, serial %v", refSum, want)
	}

	steps := ref.Steps()
	for k := 0; k <= steps; k++ {
		s := runSession(t, cfg, k)
		ck, err := s.Checkpoint()
		if err != nil {
			t.Fatalf("k=%d: checkpoint: %v", k, err)
		}
		// Round-trip the wire form too: restore always goes through bytes.
		data, err := ck.Encode()
		if err != nil {
			t.Fatalf("k=%d: encode: %v", k, err)
		}
		ck2, err := dsmpm2.DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("k=%d: decode: %v", k, err)
		}
		resumed, err := jacobi.ResumeSession(ck2)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		fp, sum := finishFingerprint(t, resumed)
		if fp != refFP {
			t.Fatalf("k=%d: restored fingerprint %s, unbroken run %s", k, fp, refFP)
		}
		if sum != refSum {
			t.Fatalf("k=%d: restored checksum %v, unbroken run %v", k, sum, refSum)
		}
	}
}

// TestCheckpointRoundTripSharded is the sweep on a sharded machine: capture
// must snapshot every shard's kernel (clock, RNG position, cross-shard send
// stamp), restore must rebuild an identically sharded system, and the
// continued run must replay the sharded schedule — combining-tree barriers
// and all — bit for bit, at every step boundary.
func TestCheckpointRoundTripSharded(t *testing.T) {
	cfg := sessionConfig()
	cfg.Nodes = 8
	cfg.Shards = 2
	ref := runSession(t, cfg, 0)
	refFP, refSum := finishFingerprint(t, ref)
	if want := jacobi.SolveSerial(cfg.N, cfg.Iterations); refSum != want {
		t.Fatalf("reference checksum %v, serial %v", refSum, want)
	}

	steps := ref.Steps()
	for k := 0; k <= steps; k++ {
		s := runSession(t, cfg, k)
		ck, err := s.Checkpoint()
		if err != nil {
			t.Fatalf("k=%d: checkpoint: %v", k, err)
		}
		if got := len(ck.KernelShards); got != 2 {
			t.Fatalf("k=%d: checkpoint holds %d kernel shards, want 2", k, got)
		}
		if ck.Config.Shards != 2 {
			t.Fatalf("k=%d: checkpoint config shards %d, want 2", k, ck.Config.Shards)
		}
		data, err := ck.Encode()
		if err != nil {
			t.Fatalf("k=%d: encode: %v", k, err)
		}
		ck2, err := dsmpm2.DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("k=%d: decode: %v", k, err)
		}
		resumed, err := jacobi.ResumeSession(ck2)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		fp, sum := finishFingerprint(t, resumed)
		if fp != refFP {
			t.Fatalf("k=%d: restored fingerprint %s, unbroken run %s", k, fp, refFP)
		}
		if sum != refSum {
			t.Fatalf("k=%d: restored checksum %v, unbroken run %v", k, sum, refSum)
		}
	}
}

// TestCheckpointRoundTripAdaptive sweeps the restore property over a run
// with the access profiler and home migration enabled, so checkpoints land
// inside profiler epochs (between the barriers that fold them) and the
// profiler's evidence state must round-trip exactly.
func TestCheckpointRoundTripAdaptive(t *testing.T) {
	cfg := sessionConfig()
	cfg.MisplaceHomes = true
	cfg.AdaptiveHomes = true
	ref := runSession(t, cfg, 0)
	refFP, refSum := finishFingerprint(t, ref)

	for k := 0; k <= ref.Steps(); k++ {
		s := runSession(t, cfg, k)
		ck, err := s.Checkpoint()
		if err != nil {
			t.Fatalf("k=%d: checkpoint: %v", k, err)
		}
		resumed, err := jacobi.ResumeSession(ck)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		fp, sum := finishFingerprint(t, resumed)
		if fp != refFP {
			t.Fatalf("k=%d: restored fingerprint %s, unbroken run %s", k, fp, refFP)
		}
		if sum != refSum {
			t.Fatalf("k=%d: restored checksum %v, unbroken run %v", k, sum, refSum)
		}
	}
}

// faultyPlan is the bench's faulty-jacobi scenario: node 2 fail-stops three
// times, once per work unit (the first mid-compute, the later two parked
// across step boundaries), warm-resuming from its recorded checkpoints each
// time. Every crash/restart gap spans a safe point, so the sweep checkpoints
// runs with a dead node, a mid-plan cursor, and a non-trivial checkpoint
// registry — all of which must survive the wire round-trip.
func faultyPlan() *dsmpm2.FaultPlan {
	return dsmpm2.NewFaultPlan(11).
		Crash(dsmpm2.Time(400*dsmpm2.Microsecond), 2).
		Restart(dsmpm2.Time(20*dsmpm2.Millisecond), 2).
		Crash(dsmpm2.Time(21*dsmpm2.Millisecond), 2).
		Restart(dsmpm2.Time(40*dsmpm2.Millisecond), 2).
		Crash(dsmpm2.Time(41*dsmpm2.Millisecond), 2).
		Restart(dsmpm2.Time(60*dsmpm2.Millisecond), 2)
}

// TestCheckpointMidFaultPlan sweeps the round-trip property across a run
// with a fault plan injected through the resumable cursor: checkpoints land
// before the crash, while node 2 is dead, and after its restart, and every
// restored run must replay the rest of the plan bit-identically.
func TestCheckpointMidFaultPlan(t *testing.T) {
	cfg := sessionConfig()
	cfg.FaultPlan = faultyPlan()
	ref := runSession(t, cfg, 0)
	refFP, refSum := finishFingerprint(t, ref)
	if ref.System().RecoveryStats().Crashes == 0 {
		t.Fatalf("fault plan applied no crash; the sweep would not cover a mid-plan point")
	}
	want := jacobi.SolveSerial(cfg.N, cfg.Iterations)
	if refSum != want {
		t.Fatalf("faulty reference checksum %v, serial %v", refSum, want)
	}

	sawDead := false
	for k := 0; k <= ref.Steps(); k++ {
		cfgK := sessionConfig()
		cfgK.FaultPlan = faultyPlan()
		s := runSession(t, cfgK, k)
		if s.System().NodeDead(2) {
			sawDead = true
		}
		ck, err := s.Checkpoint()
		if err != nil {
			t.Fatalf("k=%d: checkpoint: %v", k, err)
		}
		data, err := ck.Encode()
		if err != nil {
			t.Fatalf("k=%d: encode: %v", k, err)
		}
		ck2, err := dsmpm2.DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("k=%d: decode: %v", k, err)
		}
		resumed, err := jacobi.ResumeSession(ck2)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		fp, sum := finishFingerprint(t, resumed)
		if fp != refFP {
			t.Fatalf("k=%d: restored fingerprint %s, unbroken run %s", k, fp, refFP)
		}
		if sum != refSum {
			t.Fatalf("k=%d: restored checksum %v, unbroken run %v", k, sum, refSum)
		}
	}
	if !sawDead {
		t.Fatalf("no sweep point caught node 2 dead; widen the plan window")
	}
}

// TestCheckpointDecodeErrors pins the failure modes of the wire format:
// unknown versions, truncation and corruption must come back as descriptive
// errors, never a panic or a silent misrestore.
func TestCheckpointDecodeErrors(t *testing.T) {
	s := runSession(t, sessionConfig(), 2)
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	data, err := ck.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	if _, err := dsmpm2.DecodeCheckpoint(data[:len(data)/2]); err == nil {
		t.Fatalf("truncated envelope decoded without error")
	}
	if _, err := dsmpm2.DecodeCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Fatalf("garbage decoded without error")
	}

	bad := strings.Replace(string(data), `"version":1`, `"version":99`, 1)
	if bad == string(data) {
		t.Fatalf("version marker not found in envelope")
	}
	if _, err := dsmpm2.DecodeCheckpoint([]byte(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version: got err %v, want version error", err)
	}

	// Flip one byte inside the body: the recorded hash must catch it.
	corrupt := []byte(strings.Replace(string(data), `"nodes":16`, `"nodes":17`, 1))
	if string(corrupt) == string(data) {
		t.Fatalf("corruption marker not found in envelope")
	}
	if _, err := dsmpm2.DecodeCheckpoint(corrupt); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("corrupted body: got err %v, want hash mismatch", err)
	}
}

// TestCheckpointRejectsUnsafePoint verifies capture refuses a system that is
// not at a safe point, with an error instead of a corrupt snapshot.
func TestCheckpointRejectsUnsafePoint(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Seed: 3})
	lk := sys.NewLock(0)
	done := make(chan struct{})
	sys.Spawn(0, "holder", func(t *dsmpm2.Thread) {
		t.Acquire(lk)
		t.Release(lk)
		close(done)
	})
	// Before Run: spawn wakes are queued, so the engine is not quiesced.
	if _, err := sys.Checkpoint(nil); err == nil {
		t.Fatalf("checkpoint with queued events succeeded")
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	<-done
	if _, err := sys.Checkpoint(nil); err != nil {
		t.Fatalf("checkpoint at a drained safe point failed: %v", err)
	}
}
