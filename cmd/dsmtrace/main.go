// Command dsmtrace is the post-mortem analyzer for DSM-PM2 trace logs
// (Section 4: "very precise post-mortem monitoring tools ... providing the
// user with valuable information on the time spent within each elementary
// function").
//
// Generate a trace by running a System with Config.Trace set and writing
// sys.Trace() with WriteJSON, then:
//
//	dsmtrace run.trace.json
//
// With -demo, dsmtrace runs a short TSP instance itself and analyzes it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"dsmpm2/internal/apps/tsp"
	"dsmpm2/internal/trace"
)

func main() {
	demo := flag.Bool("demo", false, "trace a short built-in TSP run instead of reading a file")
	flag.Parse()

	var lg *trace.Log
	switch {
	case *demo:
		res, err := tsp.Run(tsp.Config{Cities: 8, Seed: 1, Nodes: 2, Protocol: "li_hudak", Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		lg = res.System.Trace()
		fmt.Printf("traced a 8-city TSP run on 2 nodes (best tour %d)\n\n", res.BestCost)
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		lg, err = trace.ReadJSON(f)
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: dsmtrace <trace.json> | dsmtrace -demo")
		os.Exit(2)
	}

	fmt.Printf("spans recorded: %d\n\n", lg.Len())
	fmt.Println("time per elementary function:")
	trace.FormatBreakdown(lg.Breakdown(), os.Stdout)

	fmt.Println("\ntraced time per node:")
	perNode := lg.PerNode()
	nodes := make([]int, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		fmt.Printf("node %d: %12.1f us\n", n, perNode[n].Microseconds())
	}
}
