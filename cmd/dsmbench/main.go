// Command dsmbench regenerates every table and figure of the paper's
// evaluation (Section 4), printing the paper's numbers next to the measured
// ones.
//
//	dsmbench -exp all          # everything
//	dsmbench -exp table3       # read fault, page-migration policy
//	dsmbench -exp table4       # read fault, thread-migration policy
//	dsmbench -exp fig4         # TSP protocol comparison
//	dsmbench -exp fig5         # Java consistency comparison
//	dsmbench -exp rpc          # null RPC micro-latency (Section 2.1)
//	dsmbench -exp migration    # thread migration micro-latency (Section 2.1)
//	dsmbench -exp protocols    # the built-in protocol registry (Table 2)
//	dsmbench -exp multicluster # hierarchical topology: intra vs inter faults
//	dsmbench -exp contention   # link bandwidth occupancy: queueing delay
//	dsmbench -exp kernel       # simulator wall-clock efficiency (events/sec)
//	dsmbench -exp faults       # crash/restart fault plans on restart-aware jacobi
//	dsmbench -exp comm         # batched vs unbatched communication path
//	dsmbench -exp adapt        # sharing-pattern profiler + dynamic home migration
//	dsmbench -exp serve        # Zipf-serving KV store: per-op tail latency, static vs adaptive
//	dsmbench -exp tune         # what-if auto-tuner: record once, re-simulate the config grid
//
// The tune experiment (excluded from "all", like kernel) records one run of
// -tuneworkload (jacobi, matmul or serve), then re-simulates the whole
// configuration search space — {protocol x topology x placement x comm
// batching} — as parallel host-level runs (-workers, default every host CPU)
// and prints the grid ranked by virtual elapsed time. Cell results are
// cached in -cachedir (default .tunecache) keyed by the recording's digests,
// so a repeated sweep re-runs nothing and reproduces the identical ranking.
// The grid can be subset with -tuneprotos/-tunetopos/-tuneplace/-tunecomm
// (comma-separated; "all" keeps the axis). It exits non-zero if the winning
// cell fails to beat the recording baseline. With -json it writes the
// committed BENCH_tune.json snapshot, which deliberately omits worker and
// cache counters: sweeps are bit-identical whatever the host parallelism or
// cache state, and the snapshot stays byte-comparable.
//
// The comm experiment (excluded from "all", like kernel) runs jacobi,
// matmul and lu at 16-64 nodes on both communication paths and reports the
// wire accounting: messages, bytes and envelopes (a multi-part batch counts
// as one envelope), the DSM module's own counters, and the TimingLog.ByLink
// summaries. With -json it writes the committed BENCH_comm.json snapshot.
// All numbers are virtual-time exact and deterministic per seed.
//
// The adapt experiment (excluded from "all", like kernel) starts jacobi, lu
// and matmul at 16-64 nodes from deliberately misplaced homes (everything on
// node 0) and compares static placement against the online profiler's home
// migration: remote and misplaced fetch counts, completed migrations, diff
// traffic, and the per-epoch sharing-class histogram. With -json it writes
// the committed BENCH_adapt.json snapshot. All numbers are virtual-time
// exact and deterministic per seed.
//
// The serve experiment (excluded from "all", like kernel) drives the
// kvstore app — an open-loop Zipf trace with hot-key churn over per-bucket
// entry-consistency locks — twice from node-0-misplaced homes: once with
// that placement frozen, once with the profiler's home migration on. It
// reports per-operation latency digests (p50/p95/p99 from the core's
// fixed-grid histograms, deterministic per seed), the hot-key tally, and
// verifies both runs against the serial oracle plus a full replay of the
// adaptive run for histogram bit-identity. It exits non-zero unless the
// adaptive p99 beats the static one. With -json it writes the committed
// BENCH_serve.json snapshot.
//
// The faults experiment (excluded from "all", like kernel) runs the
// restart-aware jacobi kernel under a declarative fault plan and reports,
// per protocol, whether the run completed with sequentially-correct results
// and what the fault and recovery layers did. The plan comes from
// -faultplan (a JSON file), from -mtbf/-repair (a generated exponential
// failure schedule, deterministic per -faultseed), or defaults to a pinned
// two-crash demo. With -json the per-protocol results are printed as a JSON
// document instead of a table, e.g.
//
//	dsmbench -exp faults -nodes 16 -clusters 2 -mtbf 10 -repair 3 -json
//
// The multicluster experiment goes beyond the paper's uniform clusters: a
// hierarchical topology with a fast intra-cluster profile and a slow
// inter-cluster backbone, e.g.
//
//	dsmbench -topology hier -clusters 2 -intra SISCI/SCI -inter TCP/Ethernet
//
// The kernel experiment measures the simulator itself (not the simulated
// cluster): wall-clock events/sec, allocations per event and peak heap,
// against the committed pre-overhaul baseline. It then runs the host-scaling
// matrix: the 1,000-proc event storm on the parallel (sharded) kernel at
// shard counts 1,2,4,... up to -shards (default: the host's CPU count,
// floored at 2), reporting each row's throughput and speedup over the
// shards=1 serial baseline. Every BENCH_*.json snapshot records the host it
// was measured on (CPU count, GOMAXPROCS, Go version), so rows from
// different machines stay interpretable. With -json it writes the
// BENCH_kernel.json snapshot that tracks the perf trajectory; with
// -cpuprofile/-memprofile it captures pprof profiles of any experiment so a
// hot-path regression can be diagnosed without editing code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/apps/mapcolor"
	"dsmpm2/internal/apps/tsp"
	"dsmpm2/internal/bench"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/tune"
)

// main delegates to realMain so error paths unwind through the deferred
// profile writers (log.Fatalf would os.Exit past pprof.StopCPUProfile and
// leave a truncated CPU profile).
func main() {
	os.Exit(realMain(os.Args[1:]))
}

// experiments is the valid -exp set; usage errors name it verbatim.
var experiments = []string{
	"all", "protocols", "rpc", "migration", "table3", "table4",
	"fig4", "fig4detail", "fig5", "multicluster", "contention",
	"kernel", "faults", "comm", "adapt", "serve", "ckpt", "bisect", "tune",
}

// cliArgs is the validated knob set; defaultArgs carries the flag defaults
// so tests can perturb one knob at a time.
type cliArgs struct {
	exp     string
	shards  int
	perturb int
	readers int
	// The tune experiment's knobs: the worker-pool size and the grid-subset
	// selectors (comma-separated axis values; "all"/"" keeps the whole axis).
	workers      int
	cacheDir     string
	tuneWorkload string
	tuneProtos   string
	tuneTopos    string
	tunePlace    string
	tuneComm     string
}

// defaultArgs mirrors the flag defaults.
func defaultArgs(exp string) cliArgs {
	return cliArgs{exp: exp, perturb: 3, readers: 8, cacheDir: ".tunecache",
		tuneWorkload: "jacobi", tuneProtos: "all", tuneTopos: "all", tunePlace: "all", tuneComm: "all"}
}

// axisList parses a comma-separated grid-subset selector; "all" (or empty)
// selects the whole axis, rendered as a nil subset for tune.Options.
func axisList(csv string) []string {
	csv = strings.TrimSpace(csv)
	if csv == "" || csv == "all" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(csv, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// checkAxis rejects a grid-subset selector naming an unknown axis value; the
// error names the valid set so a typo is self-correcting.
func checkAxis(flagName, csv string, valid []string) error {
	for _, v := range axisList(csv) {
		ok := false
		for _, w := range valid {
			if v == w {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("-%s %q is not a valid value (valid: %s, or all)",
				flagName, v, strings.Join(valid, ", "))
		}
	}
	return nil
}

// validateArgs rejects an unknown experiment or out-of-range knobs before
// anything runs, so a typo exits 2 with usage instead of silently running
// zero experiments or panicking mid-suite.
func validateArgs(a cliArgs) error {
	known := false
	for _, e := range experiments {
		if e == a.exp {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (valid: %s)", a.exp, strings.Join(experiments, ", "))
	}
	if a.shards < 0 {
		return fmt.Errorf("-shards %d out of range (want >= 0; 0 selects the experiment's default)", a.shards)
	}
	// The experiments that shard the simulated machine (not just the host
	// matrix) bound -shards by their pinned topology: a shard must own at
	// least one node, and the comm scale rows additionally need the shards to
	// tile the hierarchical topology's clusters so the combining tree's
	// leaves align with cluster boundaries.
	switch a.exp {
	case "faults":
		// Crash recovery is single-loop machinery; System.InjectFaults
		// refuses a sharded kernel, so reject the combination up front.
		if a.shards > 1 {
			return fmt.Errorf("-shards %d is invalid for the faults experiment (fault injection requires Shards <= 1: crash recovery assumes the single-loop kernel)", a.shards)
		}
	case "serve":
		if a.shards > bench.ServeNodes {
			return fmt.Errorf("-shards %d exceeds the serve workload's %d nodes (a shard owns at least one node)",
				a.shards, bench.ServeNodes)
		}
	case "comm":
		if a.shards > bench.CommScaleClusters {
			return fmt.Errorf("-shards %d exceeds the comm scale topology's %d clusters",
				a.shards, bench.CommScaleClusters)
		}
		if a.shards > 0 && bench.CommScaleClusters%a.shards != 0 {
			return fmt.Errorf("-shards %d does not tile the comm scale topology's %d clusters (want a divisor)",
				a.shards, bench.CommScaleClusters)
		}
	case "tune":
		if a.workers < 0 {
			return fmt.Errorf("-workers %d out of range (want >= 0; 0 uses every host CPU)", a.workers)
		}
		if fi, err := os.Stat(a.cacheDir); a.cacheDir != "" && err == nil && !fi.IsDir() {
			return fmt.Errorf("-cachedir %q exists and is not a directory", a.cacheDir)
		}
		okWl := false
		for _, w := range tune.Workloads {
			if a.tuneWorkload == w {
				okWl = true
				break
			}
		}
		if !okWl {
			return fmt.Errorf("-tuneworkload %q is not a recordable workload (valid: %s)",
				a.tuneWorkload, strings.Join(tune.Workloads, ", "))
		}
		for _, ax := range []struct {
			flag, csv string
			valid     []string
		}{
			{"tuneprotos", a.tuneProtos, tune.Protocols},
			{"tunetopos", a.tuneTopos, tune.Topologies},
			{"tuneplace", a.tunePlace, tune.Placements},
			{"tunecomm", a.tuneComm, tune.Comms},
		} {
			if err := checkAxis(ax.flag, ax.csv, ax.valid); err != nil {
				return err
			}
		}
	}
	if a.perturb < 1 {
		return fmt.Errorf("-perturb %d out of range (want >= 1: a session step index)", a.perturb)
	}
	if a.readers < 1 {
		return fmt.Errorf("-readers %d out of range (want >= 1 concurrent transfers)", a.readers)
	}
	return nil
}

func realMain(args []string) (code int) {
	fs := flag.NewFlagSet("dsmbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: all,rpc,migration,table3,table4,fig4,fig5,protocols,multicluster,contention, or kernel/faults/comm/adapt/serve/ckpt/bisect/tune (explicit opt-in, excluded from all)")
	cities := fs.Int("cities", 11, "TSP cities for fig4 (paper: 14)")
	topology := fs.String("topology", "hier", "multicluster topology: hier")
	nodes := fs.Int("nodes", 8, "cluster size for multicluster")
	clusters := fs.Int("clusters", 2, "cluster count for -topology hier")
	intra := fs.String("intra", "SISCI/SCI", "intra-cluster profile for -topology hier")
	inter := fs.String("inter", "TCP/Fast Ethernet", "inter-cluster profile for -topology hier")
	readers := fs.Int("readers", 8, "concurrent transfers for the contention experiment")
	jsonOut := fs.Bool("json", false, "write BENCH_kernel.json (kernel) / print JSON results (faults)")
	faultPlanPath := fs.String("faultplan", "", "JSON fault plan file for the faults experiment")
	mtbf := fs.Float64("mtbf", 0, "generate a fault plan: mean time between failures per node (virtual ms)")
	repair := fs.Float64("repair", 3, "generated plans: node repair time (virtual ms)")
	faultSeed := fs.Int64("faultseed", 11, "seed for generated fault plans and message-loss draws")
	faultProtos := fs.String("faultproto", "hbrc_mw,entry_mw", "comma-separated protocols for the faults experiment")
	shards := fs.Int("shards", 0, "kernel: max shard count for the host-scaling matrix (0 = host CPUs, floored at 2); comm: shard count of the combining-tree scale rows (0 = one per cluster); serve: kernel shards for the KV runs (0 = single-loop)")
	perturb := fs.Int("perturb", 3, "bisect experiment: session step at which the deliberate divergence is injected")
	workers := fs.Int("workers", 0, "tune: host worker-pool size for the grid sweep (0 = every host CPU)")
	cacheDir := fs.String("cachedir", ".tunecache", "tune: cell-cache ledger directory (empty disables caching)")
	tuneWorkload := fs.String("tuneworkload", "jacobi", "tune: workload to record (jacobi, matmul, serve)")
	tuneProtos := fs.String("tuneprotos", "all", "tune: comma-separated protocol subset of the grid (all = every registered protocol)")
	tuneTopos := fs.String("tunetopos", "all", "tune: comma-separated topology subset (uniform, hier)")
	tunePlace := fs.String("tuneplace", "all", "tune: comma-separated placement subset (static, misplaced, adaptive)")
	tuneComm := fs.String("tunecomm", "all", "tune: comma-separated comm subset (batched, unbatched)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cli := cliArgs{exp: *exp, shards: *shards, perturb: *perturb, readers: *readers,
		workers: *workers, cacheDir: *cacheDir, tuneWorkload: *tuneWorkload,
		tuneProtos: *tuneProtos, tuneTopos: *tuneTopos, tunePlace: *tunePlace, tuneComm: *tuneComm}
	if err := validateArgs(cli); err != nil {
		fmt.Fprintf(os.Stderr, "dsmbench: %v\n", err)
		fs.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Printf("-memprofile: %v", err)
			if code == 0 {
				code = 1
			}
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Printf("-memprofile: %v", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	if run("protocols") {
		protocolsTable()
	}
	if run("rpc") {
		rpcTable()
	}
	if run("migration") {
		migrationTable()
	}
	if run("table3") {
		table3()
	}
	if run("table4") {
		table4()
	}
	if run("fig4") {
		figure4(*cities)
	}
	if run("fig4detail") {
		figure4Detail(*cities)
	}
	if run("fig5") {
		figure5()
	}
	if run("multicluster") {
		multicluster(*topology, *nodes, *clusters, *intra, *inter)
	}
	if run("contention") {
		contention(*readers)
	}
	if *exp == "kernel" { // wall-clock heavy: explicit opt-in, not part of "all"
		if err := kernel(*jsonOut, *shards); err != nil {
			log.Printf("kernel: %v", err)
			return 1
		}
	}
	if *exp == "faults" { // explicit opt-in, not part of "all"
		if err := faults(*faultPlanPath, *mtbf, *repair, *faultSeed,
			*faultProtos, *nodes, *clusters, *intra, *inter, *jsonOut); err != nil {
			log.Printf("faults: %v", err)
			return 1
		}
	}
	if *exp == "comm" { // explicit opt-in, not part of "all"
		if err := comm(*jsonOut, *shards); err != nil {
			log.Printf("comm: %v", err)
			return 1
		}
	}
	if *exp == "adapt" { // explicit opt-in, not part of "all"
		if err := adapt(*jsonOut); err != nil {
			log.Printf("adapt: %v", err)
			return 1
		}
	}
	if *exp == "serve" { // explicit opt-in, not part of "all"
		if err := serve(*jsonOut, *shards); err != nil {
			log.Printf("serve: %v", err)
			return 1
		}
	}
	if *exp == "ckpt" { // explicit opt-in, not part of "all"
		if err := ckpt(*jsonOut); err != nil {
			log.Printf("ckpt: %v", err)
			return 1
		}
	}
	if *exp == "bisect" { // explicit opt-in, not part of "all"
		if err := bisect(*perturb); err != nil {
			log.Printf("bisect: %v", err)
			return 1
		}
	}
	if *exp == "tune" { // explicit opt-in, not part of "all"
		opts := tune.Options{
			Workers: *workers, CacheDir: *cacheDir,
			Protocols:  axisList(*tuneProtos),
			Topologies: axisList(*tuneTopos),
			Placements: axisList(*tunePlace),
			Comms:      axisList(*tuneComm),
		}
		if err := tuneExp(*jsonOut, *tuneWorkload, opts); err != nil {
			log.Printf("tune: %v", err)
			return 1
		}
	}
	return 0
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func protocolsTable() {
	header("Table 2: built-in consistency protocols")
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 1})
	fmt.Printf("%-16s\n", "protocol")
	for _, name := range sys.ProtocolNames() {
		fmt.Printf("%-16s\n", name)
	}
}

func rpcTable() {
	header("Section 2.1: null RPC latency (us)")
	fmt.Printf("%-20s %10s %10s\n", "network", "paper", "measured")
	paper := map[string]string{"BIP/Myrinet": "8", "SISCI/SCI": "6", "TCP/Myrinet": "-", "TCP/Fast Ethernet": "-"}
	for _, prof := range dsmpm2.Networks {
		us := bench.NullRPC(prof)
		fmt.Printf("%-20s %10s %10.0f\n", prof.Name, paper[prof.Name], us)
	}
}

func migrationTable() {
	header("Section 2.1: minimal-thread migration latency (us)")
	fmt.Printf("%-20s %10s %10s\n", "network", "paper", "measured")
	paper := map[string]string{"BIP/Myrinet": "75", "SISCI/SCI": "62", "TCP/Myrinet": "280", "TCP/Fast Ethernet": "373"}
	for _, prof := range dsmpm2.Networks {
		us := bench.Migration(prof)
		fmt.Printf("%-20s %10s %10.0f\n", prof.Name, paper[prof.Name], us)
	}
}

func table3() {
	header("Table 3: read fault, page-migration policy (us)")
	paper := map[string][5]int{
		"BIP/Myrinet":       {11, 23, 138, 26, 198},
		"TCP/Myrinet":       {11, 220, 343, 26, 600},
		"TCP/Fast Ethernet": {11, 220, 736, 26, 993},
		"SISCI/SCI":         {11, 38, 119, 26, 194},
	}
	fmt.Printf("%-20s %22s %22s %22s %22s %22s\n",
		"network", "page fault", "request page", "page transfer", "proto overhead", "total")
	for _, prof := range dsmpm2.Networks {
		ft := bench.ReadFaultPage(prof)
		p := paper[prof.Name]
		cell := func(paperV int, got float64) string {
			return fmt.Sprintf("%d / %.0f", paperV, got)
		}
		fmt.Printf("%-20s %22s %22s %22s %22s %22s\n", prof.Name,
			cell(p[0], ft.Detect.Microseconds()),
			cell(p[1], ft.Request.Microseconds()),
			cell(p[2], ft.Transfer.Microseconds()),
			cell(p[3], ft.ProtocolOverhead().Microseconds()),
			cell(p[4], ft.Total.Microseconds()))
	}
	fmt.Println("(cells are paper / measured)")
}

func table4() {
	header("Table 4: read fault, thread-migration policy (us)")
	paper := map[string][4]int{
		"BIP/Myrinet":       {11, 75, 1, 87},
		"TCP/Myrinet":       {11, 280, 1, 292},
		"TCP/Fast Ethernet": {11, 373, 1, 385},
		"SISCI/SCI":         {11, 62, 1, 74},
	}
	fmt.Printf("%-20s %22s %22s %22s %22s\n",
		"network", "page fault", "thread migration", "proto overhead", "total")
	for _, prof := range dsmpm2.Networks {
		ft := bench.ReadFaultMigrate(prof)
		p := paper[prof.Name]
		cell := func(paperV int, got float64) string {
			return fmt.Sprintf("%d / %.0f", paperV, got)
		}
		fmt.Printf("%-20s %22s %22s %22s %22s\n", prof.Name,
			cell(p[0], ft.Detect.Microseconds()),
			cell(p[1], ft.Migration.Microseconds()),
			cell(p[2], ft.Overhead.Microseconds()),
			cell(p[3], ft.Total.Microseconds()))
	}
	fmt.Println("(cells are paper / measured)")
}

func figure4(cities int) {
	header(fmt.Sprintf("Figure 4: TSP (%d cities, random distances), BIP/Myrinet", cities))
	serial := tsp.SolveSerial(tsp.Distances(cities, 42))
	fmt.Printf("serial optimum: %d\n", serial)
	fmt.Printf("%-16s", "protocol")
	nodeCounts := []int{1, 2, 4, 8}
	for _, n := range nodeCounts {
		fmt.Printf(" %13s", fmt.Sprintf("%d node(ms)", n))
	}
	fmt.Println()
	for _, proto := range []string{"li_hudak", "erc_sw", "hbrc_mw", "migrate_thread"} {
		fmt.Printf("%-16s", proto)
		for _, n := range nodeCounts {
			res, err := tsp.Run(tsp.Config{
				Cities: cities, Seed: 42, Nodes: n,
				Network: dsmpm2.BIPMyrinet, Protocol: proto,
			})
			if err != nil {
				log.Fatalf("[%s/%d] %v", proto, n, err)
			}
			if res.BestCost != serial {
				log.Fatalf("[%s/%d] wrong optimum %d", proto, n, res.BestCost)
			}
			fmt.Printf(" %13.2f", float64(res.Elapsed)/1e6)
		}
		fmt.Println()
	}
	fmt.Println("expected shape: page-based protocols beat migrate_thread (owner overload)")
}

// figure4Detail explains Figure 4's shape: per-node CPU occupancy and
// migration counts for the page-based winner vs migrate_thread.
func figure4Detail(cities int) {
	header("Figure 4 detail: why migrate_thread loses (4 nodes)")
	for _, proto := range []string{"li_hudak", "migrate_thread"} {
		res, err := tsp.Run(tsp.Config{
			Cities: cities, Seed: 42, Nodes: 4,
			Network: dsmpm2.BIPMyrinet, Protocol: proto,
		})
		if err != nil {
			log.Fatal(err)
		}
		rt := res.System.Runtime()
		fmt.Printf("\n%s (run time %.2f ms):\n", proto, float64(res.Elapsed)/1e6)
		fmt.Printf("  %6s %14s %12s %12s\n", "node", "cpu busy(ms)", "migr. in", "faults")
		for n := 0; n < 4; n++ {
			fmt.Printf("  %6d %14.2f %12d %12d\n",
				n, res.System.Runtime().Node(n).CPU.Busy().Microseconds()/1000,
				rt.Node(n).MigrationsIn, res.System.DSM().FaultsOn(n))
		}
	}
	fmt.Println("\nUnder migrate_thread, every thread that touches the shared bound")
	fmt.Println("migrates to node 0 and stays: node 0's CPU does nearly all the work.")
}

func figure5() {
	header("Figure 5: map coloring (29 eastern US states, 4 weighted colors), SISCI/SCI, 4 nodes")
	serial := mapcolor.SolveSerial()
	fmt.Printf("serial optimum: %d\n", serial)
	fmt.Printf("%-10s", "protocol")
	threads := []int{1, 2, 4}
	for _, th := range threads {
		fmt.Printf(" %16s", fmt.Sprintf("%d thr/node(ms)", th))
	}
	fmt.Println()
	for _, proto := range []string{"java_ic", "java_pf"} {
		fmt.Printf("%-10s", proto)
		for _, th := range threads {
			res, err := mapcolor.Run(mapcolor.Config{
				Nodes: 4, ThreadsPerNode: th,
				Network: dsmpm2.SISCISCI, Protocol: proto, Seed: 7,
			})
			if err != nil {
				log.Fatalf("[%s/%d] %v", proto, th, err)
			}
			if res.BestCost != serial {
				log.Fatalf("[%s/%d] wrong optimum %d", proto, th, res.BestCost)
			}
			fmt.Printf(" %16.2f", float64(res.Elapsed)/1e6)
		}
		fmt.Println()
	}
	fmt.Println("expected shape: java_pf outperforms java_ic (page faults beat inline checks)")
}

// resolveProfile turns a -intra/-inter flag value into a profile or exits
// with the list of valid names.
func resolveProfile(flagName, name string) *dsmpm2.NetworkProfile {
	p := dsmpm2.ResolveProfile(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "unknown -%s profile %q (have %v plus aliases like TCP/Ethernet, SCI)\n",
			flagName, name, madeleine.ProfileNames())
		os.Exit(2)
	}
	return p
}

// multicluster measures remote read faults across a heterogeneous topology
// and reports the per-link-class cost split the uniform paper setup cannot
// express.
func multicluster(topology string, nodes, clusters int, intraName, interName string) {
	if topology != "hier" {
		fmt.Fprintf(os.Stderr, "unknown -topology %q (have: hier)\n", topology)
		os.Exit(2)
	}
	if nodes < 1 || clusters < 1 {
		fmt.Fprintf(os.Stderr, "invalid layout: -nodes %d -clusters %d (both must be >= 1)\n", nodes, clusters)
		os.Exit(2)
	}
	intra := resolveProfile("intra", intraName)
	inter := resolveProfile("inter", interName)
	header(fmt.Sprintf("Multicluster: %d nodes in %d clusters, %s inside / %s between",
		nodes, clusters, intra.Name, inter.Name))
	faults := bench.HierReadFaults(nodes, clusters, intra, inter, "li_hudak")
	fmt.Printf("%-20s %8s %18s\n", "link class", "faults", "mean total (us)")
	byLink := map[string]bench.LinkFault{}
	for _, f := range faults {
		byLink[f.Link] = f
		fmt.Printf("%-20s %8d %18.0f\n", f.Link, f.Count, f.MeanTotalUS)
	}
	in, okIn := byLink[intra.Name]
	out, okOut := byLink[inter.Name]
	if okIn && okOut {
		fmt.Printf("inter-cluster faults cost %.1fx the intra-cluster ones\n",
			out.MeanTotalUS/in.MeanTotalUS)
	}
	fmt.Println("(same protocol stack, only the link profiles differ — the paper's")
	fmt.Println(" portability claim extended to heterogeneous clusters)")
}

// benchKernelFile is the perf-trajectory snapshot the kernel experiment
// writes with -json.
const benchKernelFile = "BENCH_kernel.json"

// kernelSnapshot is the BENCH_kernel.json document: the committed baseline
// (pre-overhaul kernel) next to the numbers measured by this run.
type kernelSnapshot struct {
	Experiment string `json:"experiment"`
	// Host is the machine these Current/Sharded numbers were measured on.
	Host bench.HostMeta `json:"host"`
	// Baseline is the pre-overhaul kernel (container/heap, boxed events,
	// double switch per wake, unpooled pages/messages).
	Baseline []bench.KernelResult `json:"baseline"`
	// Current is this binary, measured now on this machine.
	Current []bench.KernelResult `json:"current"`
	// Sharded is the host-scaling matrix: the 1,000-proc event storm on the
	// parallel kernel at increasing shard counts, shards=1 first (the serial
	// baseline for speedups).
	Sharded []bench.KernelResult `json:"sharded"`
}

// kernel measures the simulator's own wall-clock efficiency and compares it
// against the committed pre-overhaul baseline, then runs the host-scaling
// matrix of the parallel (sharded) kernel.
func kernel(writeJSON bool, maxShards int) error {
	header("Kernel: simulator wall-clock efficiency (baseline = pre-overhaul kernel)")
	base := bench.KernelBaseline()
	baseByName := map[string]bench.KernelResult{}
	for _, r := range base {
		baseByName[r.Name] = r
	}
	cur := bench.KernelSuite()
	fmt.Printf("%-36s %14s %14s %8s %14s %14s\n",
		"scenario", "base ev/s", "now ev/s", "speedup", "base allocs/ev", "now allocs/ev")
	for _, r := range cur {
		b, ok := baseByName[r.Name]
		if !ok {
			fmt.Printf("%-36s %14s %14.0f %8s %14s %14.4f\n",
				r.Name, "-", r.EventsPerSec, "-", "-", r.AllocsPerEvent)
			continue
		}
		fmt.Printf("%-36s %14.0f %14.0f %7.2fx %14.4f %14.4f\n",
			r.Name, b.EventsPerSec, r.EventsPerSec, r.EventsPerSec/b.EventsPerSec,
			b.AllocsPerEvent, r.AllocsPerEvent)
	}
	fmt.Println("(events/sec is wall-clock; virtual timings are identical across kernels,")
	fmt.Println(" see the golden-trace test. Baseline numbers are fixed in internal/bench.)")

	host := bench.Host()
	header(fmt.Sprintf("Kernel: host-scaling matrix (parallel kernel; host: %d CPUs, GOMAXPROCS=%d, %s)",
		host.CPUs, host.GOMAXPROCS, host.GoVersion))
	sharded := bench.KernelScalingSuite(bench.ScalingShards(maxShards))
	fmt.Printf("%-48s %12s %14s %8s\n", "scenario", "wall(ms)", "ev/s", "speedup")
	for i, r := range sharded {
		speedup := "-"
		if i > 0 && sharded[0].WallMS > 0 {
			speedup = fmt.Sprintf("%.2fx", sharded[0].WallMS/r.WallMS)
		}
		fmt.Printf("%-48s %12.2f %14.0f %8s\n", r.Name, r.WallMS, r.EventsPerSec, speedup)
	}
	fmt.Println("(speedup is wall-clock vs the shards=1 row of this same run; the virtual")
	fmt.Println(" schedule is identical for every shard count. Scaling needs free host cores:")
	fmt.Println(" on a single-core host the sharded rows only measure synchronization cost.)")
	if !writeJSON {
		return nil
	}
	snap := kernelSnapshot{Experiment: "kernel", Host: host, Baseline: base, Current: cur, Sharded: sharded}
	f, err := os.Create(benchKernelFile)
	if err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	fmt.Printf("wrote %s\n", benchKernelFile)
	return nil
}

// benchCommFile is the wire-accounting snapshot the comm experiment writes
// with -json.
const benchCommFile = "BENCH_comm.json"

// commSnapshot is the BENCH_comm.json document.
type commSnapshot struct {
	Experiment string `json:"experiment"`
	// Host is the machine this snapshot was taken on (the numbers are
	// virtual-time exact, but the provenance keeps snapshots comparable).
	Host    bench.HostMeta     `json:"host"`
	Results []bench.CommResult `json:"results"`
}

// comm compares the batched and unbatched communication paths across the
// barrier-phased applications at cluster scale, then runs the scale rows:
// jacobi on the 8-cluster hierarchical topology at 64 and 512 nodes, flat
// barriers vs the combining tree, reporting the per-barrier backbone
// envelope cost. treeShards picks the tree rows' shard count (0 = one shard
// per cluster).
func comm(writeJSON bool, treeShards int) error {
	header("Comm: batched vs unbatched communication path (virtual-time exact)")
	results := bench.CommSuite()
	fmt.Printf("%-10s %6s %9s %10s %10s %9s %8s %8s %8s %8s %12s\n",
		"app", "nodes", "path", "messages", "envelopes", "syncenv", "invals", "acks", "diffs", "notices", "elapsed(ms)")
	path := func(batched bool) string {
		if batched {
			return "batched"
		}
		return "unbatched"
	}
	byKey := map[string]bench.CommResult{}
	for _, r := range results {
		byKey[fmt.Sprintf("%s/%d/%v", r.App, r.Nodes, r.Batched)] = r
		fmt.Printf("%-10s %6d %9s %10d %10d %9d %8d %8d %8d %8d %12.2f\n",
			r.App, r.Nodes, path(r.Batched), r.Messages, r.Envelopes, r.SyncEnvelopes,
			r.Invalidations, r.InvAcks, r.DiffsSent, r.Notices, r.VirtualMS)
	}
	if b, u := byKey["jacobi/64/true"], byKey["jacobi/64/false"]; b.SyncEnvelopes > 0 {
		fmt.Printf("jacobi 64-node barrier-phase envelope reduction: %.2fx (%d -> %d); total %.2fx (%d -> %d); elapsed %.2f -> %.2f ms\n",
			float64(u.SyncEnvelopes)/float64(b.SyncEnvelopes), u.SyncEnvelopes, b.SyncEnvelopes,
			float64(u.Envelopes)/float64(b.Envelopes), u.Envelopes, b.Envelopes,
			u.VirtualMS, b.VirtualMS)
	}
	fmt.Println("(envelopes = wire departures, a multi-part batch counting once; syncenv")
	fmt.Println(" excludes the page-fetch pairs no batching can remove. The batched jacobi")
	fmt.Println(" rows show zero invalidation envelopes: the barrier's write notices carry")
	fmt.Println(" the invalidation information for free)")

	header("Comm scale: per-barrier backbone envelopes, flat vs combining-tree barriers")
	scale := bench.CommScaleSuite(treeShards)
	fmt.Printf("%-12s %6s %9s %7s %10s %9s %10s %13s\n",
		"app", "nodes", "clusters", "shards", "envelopes", "backbone", "barriers", "backbone/bar")
	var flat512, tree512 bench.CommResult
	for _, r := range scale {
		results = append(results, r)
		fmt.Printf("%-12s %6d %9d %7d %10d %9d %10d %13.1f\n",
			r.App, r.Nodes, r.Clusters, r.Shards, r.Envelopes,
			r.BackboneEnvelopes, r.BarrierGens, r.BackbonePerBarrier)
		if r.Nodes == 512 {
			if r.Shards == 1 {
				flat512 = r
			} else {
				tree512 = r
			}
		}
	}
	if flat512.BackbonePerBarrier > 0 && tree512.BackbonePerBarrier > 0 {
		fmt.Printf("512-node per-barrier backbone reduction: %.1fx (%.1f -> %.1f envelopes)\n",
			flat512.BackbonePerBarrier/tree512.BackbonePerBarrier,
			flat512.BackbonePerBarrier, tree512.BackbonePerBarrier)
	}
	fmt.Println("(backbone/bar subtracts the remote page-fetch pairs; what remains is the")
	fmt.Println(" synchronization traffic. Flat barriers send every non-home arrival across")
	fmt.Println(" the backbone — O(N) per generation — while the combining tree crosses it")
	fmt.Println(" only leader-to-leader: O(fan-in x log clusters), whatever the node count)")
	if !writeJSON {
		return nil
	}
	snap := commSnapshot{Experiment: "comm", Host: bench.Host(), Results: results}
	f, err := os.Create(benchCommFile)
	if err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	fmt.Printf("wrote %s\n", benchCommFile)
	return nil
}

// benchAdaptFile is the placement-accounting snapshot the adapt experiment
// writes with -json.
const benchAdaptFile = "BENCH_adapt.json"

// adaptSnapshot is the BENCH_adapt.json document.
type adaptSnapshot struct {
	Experiment string `json:"experiment"`
	// Host is the machine this snapshot was taken on.
	Host    bench.HostMeta      `json:"host"`
	Results []bench.AdaptResult `json:"results"`
}

// adapt compares static (misplaced) page placement against the online
// profiler's dynamic home migration across the barrier-phased applications.
func adapt(writeJSON bool) error {
	header("Adapt: static (misplaced) homes vs online profiler + home migration")
	results := bench.AdaptSuite()
	fmt.Printf("%-10s %-10s %6s %10s %8s %10s %7s %8s %10s %12s\n",
		"app", "protocol", "nodes", "placement", "remote", "misplaced", "migr", "diffs", "diffbytes", "elapsed(ms)")
	placement := func(adaptive bool) string {
		if adaptive {
			return "adaptive"
		}
		return "static"
	}
	byKey := map[string]bench.AdaptResult{}
	for _, r := range results {
		byKey[fmt.Sprintf("%s/%s/%d/%v", r.App, r.Protocol, r.Nodes, r.Adaptive)] = r
		fmt.Printf("%-10s %-10s %6d %10s %8d %10d %7d %8d %10d %12.2f\n",
			r.App, r.Protocol, r.Nodes, placement(r.Adaptive), r.RemoteFetches,
			r.MisplacedFetches, r.HomeMigrations, r.DiffsSent, r.DiffBytes, r.VirtualMS)
		if r.Adaptive && len(r.Epochs) > 0 {
			last := r.Epochs[len(r.Epochs)-1]
			fmt.Printf("    epochs=%d, last histogram: private=%d read-shared=%d prod-cons=%d migratory=%d falsely-shared=%d idle=%d\n",
				len(r.Epochs), last.Private, last.ReadShared, last.ProducerConsumer,
				last.Migratory, last.FalselyShared, last.Idle)
		}
	}
	s, a := byKey["jacobi/entry_mw/64/false"], byKey["jacobi/entry_mw/64/true"]
	if a.RemoteFetches > 0 {
		fmt.Printf("jacobi 64-node remote-fetch reduction: %.2fx (%d -> %d); elapsed %.2f -> %.2f ms; %d home migrations\n",
			float64(s.RemoteFetches)/float64(a.RemoteFetches), s.RemoteFetches, a.RemoteFetches,
			s.VirtualMS, a.VirtualMS, a.HomeMigrations)
	}
	fmt.Println("(all scenarios start with every page homed on node 0; 'adaptive' lets the")
	fmt.Println(" profiler re-home pages onto their dominant writers at barrier epochs. The")
	fmt.Println(" matmul row is the barrier-free control: no epochs, no migrations, no cost)")
	if !writeJSON {
		return nil
	}
	snap := adaptSnapshot{Experiment: "adapt", Host: bench.Host(), Results: results}
	f, err := os.Create(benchAdaptFile)
	if err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	fmt.Printf("wrote %s\n", benchAdaptFile)
	return nil
}

// benchServeFile is the tail-latency snapshot the serve experiment writes
// with -json.
const benchServeFile = "BENCH_serve.json"

// serveSnapshot is the BENCH_serve.json document.
type serveSnapshot struct {
	Experiment string `json:"experiment"`
	// Host is the machine this snapshot was taken on.
	Host   bench.HostMeta    `json:"host"`
	Static bench.ServeResult `json:"static"`
	// Adaptive serves the identical trace with home migration on.
	Adaptive bench.ServeResult `json:"adaptive"`
	// ReplayIdentical reports whether a full replay of the adaptive run
	// reproduced every latency histogram bit-identically.
	ReplayIdentical bool `json:"replay_identical"`
}

// serve runs the Zipf-serving KV store under static and adaptive placement
// and reports the per-operation tail latencies. It fails unless the
// adaptive p99 beats the static one and the replay check holds. shards > 1
// serves the trace on that many parallel event loops.
func serve(writeJSON bool, shards int) error {
	header("Serve: Zipf KV store tail latency, static (misplaced) vs adaptive homes")
	static, adaptive, replayOK, err := bench.ServeSuite(shards)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d requests over %d keys in %d buckets on %d nodes (%d kernel shard(s)), %s\n",
		static.Requests, static.Keys, static.Buckets, static.Nodes, max(static.Shards, 1), static.Protocol)
	fmt.Printf("%-10s %-6s %8s %12s %12s %12s %12s %12s\n",
		"placement", "op", "count", "p50(us)", "p95(us)", "p99(us)", "mean(us)", "max(us)")
	us := func(d dsmpm2.Duration) float64 { return float64(d) / 1e3 }
	for _, r := range []bench.ServeResult{static, adaptive} {
		for _, o := range r.Ops {
			fmt.Printf("%-10s %-6s %8d %12.1f %12.1f %12.1f %12.1f %12.1f\n",
				r.Placement, o.Kind, o.Count, us(o.P50), us(o.P95), us(o.P99), us(o.Mean), us(o.Max))
		}
	}
	fmt.Printf("home migrations: static %d, adaptive %d; remote fetches %d -> %d\n",
		static.HomeMigrations, adaptive.HomeMigrations, static.RemoteFetches, adaptive.RemoteFetches)
	fmt.Printf("hot keys (by request count): %v\n", adaptive.HotKeys)
	sp99, ap99 := bench.ServeP99(static), bench.ServeP99(adaptive)
	fmt.Printf("get p99 under hot-key churn: static %.1fus -> adaptive %.1fus (%.2fx)\n",
		us(sp99), us(ap99), float64(sp99)/float64(ap99))
	fmt.Printf("replay histograms bit-identical: %v\n", replayOK)
	fmt.Println("(open-loop trace: arrivals never wait for completions, so a slow placement")
	fmt.Println(" surfaces as queueing delay in the tail. Quantiles are fixed-grid values from")
	fmt.Println(" the core histograms — virtual-time exact and deterministic per seed)")
	if ap99 >= sp99 {
		return fmt.Errorf("adaptive get p99 %v did not beat static %v", ap99, sp99)
	}
	if !replayOK {
		return fmt.Errorf("replayed adaptive run diverged from the first (histograms not bit-identical)")
	}
	if !writeJSON {
		return nil
	}
	snap := serveSnapshot{Experiment: "serve", Host: bench.Host(),
		Static: static, Adaptive: adaptive, ReplayIdentical: replayOK}
	f, err := os.Create(benchServeFile)
	if err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	fmt.Printf("wrote %s\n", benchServeFile)
	return nil
}

// benchCkptFile is the checkpoint/restore snapshot the ckpt experiment
// writes with -json.
const benchCkptFile = "BENCH_ckpt.json"

// ckptSnapshot is the BENCH_ckpt.json document.
type ckptSnapshot struct {
	Experiment string         `json:"experiment"`
	Host       bench.HostMeta `json:"host"`
	// Roundtrip sweeps the restore property over every safe point.
	Roundtrip bench.CkptRoundtrip `json:"roundtrip"`
	// Restart compares warm (resume-from-checkpoint) against cold
	// (redo-from-scratch) crash recovery on the faulty-jacobi plan; the
	// acceptance headline is warm.redone_units < cold.redone_units.
	Restart []bench.CkptRestart `json:"restart"`
	// FastForward is the warm-started run: resume a mid-run snapshot and
	// skip the ramp-up.
	FastForward bench.CkptFastForward `json:"fast_forward"`
}

// ckpt runs the checkpoint/restore experiment suite.
func ckpt(writeJSON bool) error {
	header("Checkpoint/restore: round-trip sweep, warm vs cold crash-restart, fast-forward")
	rt, err := bench.CkptRoundtripSweep()
	if err != nil {
		return err
	}
	fmt.Printf("round-trip: %d/%d safe points restored bit-identically (%d mismatches), snapshot <= %d bytes\n",
		rt.Swept-rt.Mismatches, rt.Swept, rt.Mismatches, rt.SnapshotBytes)
	if rt.Mismatches > 0 {
		return fmt.Errorf("ckpt: %d of %d sweep points diverged after restore", rt.Mismatches, rt.Swept)
	}

	warm, cold, err := bench.CkptRestartCompare()
	if err != nil {
		return err
	}
	warm.ChecksumOK = warm.Checksum == rt.Checksum
	cold.ChecksumOK = cold.Checksum == rt.Checksum
	fmt.Printf("%-6s %13s %14s %12s %10s %9s\n", "mode", "redone units", "warm restarts", "elapsed(ms)", "checksum", "correct")
	for _, r := range []bench.CkptRestart{warm, cold} {
		fmt.Printf("%-6s %13d %14d %12.2f %10.4f %9v\n", r.Mode, r.RedoneUnits, r.WarmRestarts, r.VirtualMS, r.Checksum, r.ChecksumOK)
	}
	if warm.RedoneUnits >= cold.RedoneUnits {
		return fmt.Errorf("ckpt: warm restart redid %d units, cold %d — resume-from-checkpoint must redo strictly fewer",
			warm.RedoneUnits, cold.RedoneUnits)
	}
	if !warm.ChecksumOK {
		return fmt.Errorf("ckpt: warm restart checksum %v does not match the fault-free reference %v",
			warm.Checksum, rt.Checksum)
	}
	if !cold.ChecksumOK {
		fmt.Println("(cold redo also corrupts the answer: the rotated Jacobi buffers no longer hold" +
			" the old units' inputs, so redoing them reads moved-on neighbour data — per-unit" +
			" checkpoints make node-local recovery consistent, not just cheap)")
	}

	ff, err := bench.CkptFastForwardRun()
	if err != nil {
		return err
	}
	fmt.Printf("fast-forward: resume at step %d (skipping %d committed units): %.1f ms host wall vs %.1f ms from scratch\n",
		ff.ResumeStep, ff.UnitsSkipped, ff.ResumeWallMS, ff.FullWallMS)
	fmt.Println("(every number but the host wall times is virtual-time exact and replay-stable)")

	if !writeJSON {
		return nil
	}
	snap := ckptSnapshot{Experiment: "ckpt", Host: bench.Host(),
		Roundtrip: rt, Restart: []bench.CkptRestart{warm, cold}, FastForward: ff}
	f, err := os.Create(benchCkptFile)
	if err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	fmt.Printf("wrote %s\n", benchCkptFile)
	return nil
}

// bisect demonstrates divergence bisection: a deliberate trace perturbation
// is injected at -perturb, and a binary search over per-step fingerprints
// recovers the step from O(log n) probe runs.
func bisect(perturbStep int) error {
	header("Divergence bisection: binary search for the first divergent safe point")
	res, err := bench.CkptBisectRun(perturbStep)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %6d\n", "session steps", res.Steps)
	fmt.Printf("%-28s %6d\n", "perturbation injected at", res.InjectedStep)
	fmt.Printf("%-28s %6d\n", "first divergent safe point", res.FoundStep)
	fmt.Printf("%-28s %6d\n", "probe runs", res.Probes)
	if !res.Recovered {
		return fmt.Errorf("bisect: found step %d does not match the injected step %d (+1)", res.FoundStep, res.InjectedStep)
	}
	fmt.Println("(the probe at step k replays the suspect run to safe point k and compares its")
	fmt.Println(" fingerprint to the reference ledger — a golden break is located without full traces)")
	return nil
}

// benchTuneFile is the ranked-grid snapshot the tune experiment writes with
// -json.
const benchTuneFile = "BENCH_tune.json"

// tuneSnapshot is the BENCH_tune.json document. It deliberately carries no
// worker-pool size and no ran/cached cell split: the ranking is a pure
// function of the recording and the grid subset, so the snapshot must be
// byte-identical whatever the host parallelism or cache state. Only the
// host stanza records where the sweep happened.
type tuneSnapshot struct {
	Experiment string         `json:"experiment"`
	Host       bench.HostMeta `json:"host"`
	// Workload/Seed/digests identify the recording the grid re-simulated.
	Workload       string `json:"workload"`
	Seed           int64  `json:"seed"`
	ConfigDigest   string `json:"config_digest"`
	WorkloadDigest string `json:"workload_digest"`
	GridSize       int    `json:"grid_size"`
	// Baseline is the recording run's own cell; Winner must beat it.
	Baseline tune.CellResult   `json:"baseline"`
	Winner   tune.CellResult   `json:"winner"`
	Prior    dsmpm2.TunedPrior `json:"prior"`
	Cells    []tune.CellResult `json:"cells"`
}

// tuneExp records the workload once, sweeps the configuration grid in
// parallel, and prints the ranked cells. It fails (exit 1) unless the
// winning cell strictly matches or beats the recording baseline's virtual
// elapsed time.
func tuneExp(writeJSON bool, workload string, opts tune.Options) error {
	rec, rep, err := bench.TuneSuite(workload, opts)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Tune: what-if sweep of %s (seed %d), %d-cell grid", workload, rec.Seed, rep.GridSize))
	fmt.Printf("recording: baseline %s, fingerprint %.16s..., workload digest %.16s...\n",
		rec.Baseline.Key(), rec.Fingerprint, rec.WorkloadDigest)
	fmt.Printf("sweep: %d cells ran, %d served from the cache ledger\n", rep.RanCells, rep.CachedCells)
	fmt.Printf("%4s %-46s %8s %12s %10s %8s %6s %10s\n",
		"rank", "cell (protocol/topology/placement/comm)", "correct", "elapsed(ms)", "envelopes", "remote", "migr", "p99(us)")
	for _, c := range rep.Cells {
		if !c.Correct {
			why := c.Err
			if why == "" {
				why = "wrong result"
			}
			fmt.Printf("%4d %-46s %8v  %s\n", c.Rank, c.Key(), false, why)
			continue
		}
		fmt.Printf("%4d %-46s %8v %12.3f %10d %8d %6d %10.1f\n",
			c.Rank, c.Key(), true, c.VirtualMS, c.Envelopes, c.RemoteFetches,
			c.HomeMigrations, float64(c.P99)/1e3)
	}
	if !rep.Winner.Correct {
		return fmt.Errorf("no correct cell in the %d-cell grid", rep.GridSize)
	}
	fmt.Printf("winner: %s at %.3f ms vs baseline %s at %.3f ms (%.2fx)\n",
		rep.Winner.Key(), rep.Winner.VirtualMS, rep.Baseline.Key(), rep.Baseline.VirtualMS,
		rep.Baseline.VirtualMS/rep.Winner.VirtualMS)
	fmt.Printf("prior: protocol=%s placement=%s comm=%s (feed back via Config.TunedPrior)\n",
		rep.Prior.Protocol, rep.Prior.Placement, rep.Prior.Comm)
	fmt.Println("(every cell is an independent deterministic re-simulation of the recorded")
	fmt.Println(" workload: the numbers are virtual-time exact, the ranking is bit-identical")
	fmt.Println(" across worker counts, and cached cells replay from the ledger unchanged)")
	if rep.Winner.VirtualMS > rep.Baseline.VirtualMS {
		return fmt.Errorf("winner %s (%.3f ms) regresses vs the recording baseline %s (%.3f ms)",
			rep.Winner.Key(), rep.Winner.VirtualMS, rep.Baseline.Key(), rep.Baseline.VirtualMS)
	}
	if !writeJSON {
		return nil
	}
	snap := tuneSnapshot{Experiment: "tune", Host: bench.Host(),
		Workload: rep.Workload, Seed: rep.Seed,
		ConfigDigest: rep.ConfigDigest, WorkloadDigest: rep.WorkloadDigest,
		GridSize: rep.GridSize, Baseline: rep.Baseline, Winner: rep.Winner,
		Prior: rep.Prior, Cells: rep.Cells}
	f, err := os.Create(benchTuneFile)
	if err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	fmt.Printf("wrote %s\n", benchTuneFile)
	return nil
}

// contention shows the link occupancy model: concurrent page transfers over
// one saturated link serialize in virtual time.
func contention(readers int) {
	header(fmt.Sprintf("Link contention: %d concurrent 4 KiB transfers over one BIP/Myrinet link", readers))
	res := bench.Contention(dsmpm2.BIPMyrinet, readers)
	fmt.Printf("%-34s %12.0f\n", "mean fault, contention off (us)", res.MeanFaultOffUS)
	fmt.Printf("%-34s %12.0f\n", "mean fault, contention on  (us)", res.MeanFaultOnUS)
	fmt.Printf("%-34s %12d\n", "messages queued on busy link", res.Waits)
	fmt.Printf("%-34s %12.0f\n", "total queueing delay (us)", res.WaitTimeUS)
	fmt.Println("(off: transfers overlap for free; on: FIFO serialization per link)")
}

// faultResult is one protocol's outcome under the fault plan, the faults
// experiment's JSON row.
type faultResult struct {
	Protocol  string  `json:"protocol"`
	Completed bool    `json:"completed"`
	Correct   bool    `json:"correct"`
	Checksum  float64 `json:"checksum"`
	Expected  float64 `json:"expected"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Fingerprint is the run's TimingLog digest: identical across replays
	// of the same seed + plan.
	Fingerprint string               `json:"fingerprint"`
	Faults      dsmpm2.FaultStats    `json:"faults"`
	Recovery    dsmpm2.RecoveryStats `json:"recovery"`
	Error       string               `json:"error,omitempty"`
}

// faults runs the restart-aware jacobi kernel under a fault plan for each
// requested protocol on a hierarchical topology.
func faults(planPath string, mtbfMS, repairMS float64, seed int64, protos string,
	nodes, clusters int, intraName, interName string, jsonOut bool) error {
	const gridN, iters = 24, 8
	var plan *dsmpm2.FaultPlan
	var planDesc string
	switch {
	case planPath != "":
		p, err := dsmpm2.LoadFaultPlan(planPath)
		if err != nil {
			return err
		}
		plan = p
		planDesc = fmt.Sprintf("file %s (%d events)", planPath, len(p.Events))
	case mtbfMS > 0:
		// Horizon sized to the workload: failures beyond the run's end
		// never fire. Node 0 is protected — it is the reliable home and
		// the synchronization manager.
		horizon := dsmpm2.Time(40 * dsmpm2.Millisecond)
		plan = dsmpm2.GenerateMTBFPlan(seed, nodes, horizon,
			dsmpm2.Duration(mtbfMS*float64(dsmpm2.Millisecond)),
			dsmpm2.Duration(repairMS*float64(dsmpm2.Millisecond)), 0)
		planDesc = fmt.Sprintf("MTBF %.1fms repair %.1fms seed %d (%d events)",
			mtbfMS, repairMS, seed, len(plan.Events))
	default:
		// Node 0 is the protected home and synchronization manager: the
		// demo plan must never target it.
		if nodes < 2 {
			return fmt.Errorf("the demo plan needs -nodes >= 2 (node 0 is protected)")
		}
		plan = dsmpm2.NewFaultPlan(seed)
		crash1, crash2 := nodes/3, (2*nodes)/3
		if crash1 < 1 {
			crash1 = 1
		}
		if crash2 <= crash1 {
			crash2 = crash1 + 1
		}
		plan.Crash(dsmpm2.Time(2*dsmpm2.Millisecond), crash1)
		plan.Restart(dsmpm2.Time(9*dsmpm2.Millisecond), crash1)
		if crash2 < nodes {
			plan.Crash(dsmpm2.Time(4*dsmpm2.Millisecond), crash2)
			plan.Restart(dsmpm2.Time(12*dsmpm2.Millisecond), crash2)
			planDesc = fmt.Sprintf("default demo: crash/restart nodes %d and %d", crash1, crash2)
		} else {
			planDesc = fmt.Sprintf("default demo: crash/restart node %d", crash1)
		}
	}
	intra := resolveProfile("intra", intraName)
	inter := resolveProfile("inter", interName)
	if !jsonOut {
		header(fmt.Sprintf("Faults: restart-aware jacobi (%dx%d, %d sweeps), %d nodes in %d clusters",
			gridN, gridN, iters, nodes, clusters))
		fmt.Printf("plan: %s\n", planDesc)
	}
	expected := jacobi.SolveSerial(gridN, iters)
	var results []faultResult
	for _, proto := range strings.Split(protos, ",") {
		proto = strings.TrimSpace(proto)
		if proto == "" {
			continue
		}
		fr := faultResult{Protocol: proto, Expected: expected}
		res, err := jacobi.Run(jacobi.Config{
			N: gridN, Iterations: iters, Nodes: nodes,
			Topology: dsmpm2.HierarchicalTopology(
				dsmpm2.EvenClusters(nodes, clusters), intra, inter),
			Protocol: proto, Seed: 7,
			FaultPlan: plan,
		})
		if err != nil {
			fr.Error = err.Error()
		} else {
			fr.Completed = true
			fr.Checksum = res.Checksum
			fr.Correct = res.Checksum == expected
			fr.ElapsedMS = float64(res.Elapsed) / 1e6
			fr.Fingerprint = bench.TraceFingerprint(res.System)
			fr.Faults = res.Faults
			fr.Recovery = res.Recovery
		}
		results = append(results, fr)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	fmt.Printf("%-12s %10s %8s %12s %8s %9s %6s %5s %8s\n",
		"protocol", "completed", "correct", "elapsed(ms)", "crashes", "restarts", "held", "lost", "retries")
	for _, fr := range results {
		if fr.Error != "" {
			fmt.Printf("%-12s %10v %8s %12s  error: %s\n", fr.Protocol, false, "-", "-", fr.Error)
			continue
		}
		fmt.Printf("%-12s %10v %8v %12.2f %8d %9d %6d %5d %8d\n",
			fr.Protocol, fr.Completed, fr.Correct, fr.ElapsedMS,
			fr.Faults.Crashes, fr.Faults.Restarts, fr.Faults.Held,
			fr.Recovery.Lost, fr.Recovery.Retries)
	}
	fmt.Println("(home-based protocols — hbrc_mw, entry_mw — keep committed data on the")
	fmt.Println(" protected home node 0 and recover exactly; ownership-migrating protocols")
	fmt.Println(" can lose sole copies that died with their owner, reported under 'lost')")
	return nil
}
