package main

import (
	"strings"
	"testing"
)

// TestCLIRejectsBadArgs pins the command's error edges: an unknown -exp or
// an out-of-range knob must exit 2 before any experiment runs, and the
// message must name what is valid.
func TestCLIRejectsBadArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown experiment", []string{"-exp", "bogus"}},
		{"empty experiment", []string{"-exp", ""}},
		{"misspelled serve", []string{"-exp", "server"}},
		{"negative shards", []string{"-exp", "kernel", "-shards", "-1"}},
		{"zero perturb", []string{"-exp", "bisect", "-perturb", "0"}},
		{"negative perturb", []string{"-exp", "bisect", "-perturb", "-2"}},
		{"zero readers", []string{"-exp", "contention", "-readers", "0"}},
		{"unparseable flag", []string{"-exp"}},
		{"unknown flag", []string{"-frobnicate"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if code := realMain(c.args); code != 2 {
				t.Errorf("realMain(%v) = %d, want usage exit 2", c.args, code)
			}
		})
	}
}

// TestValidateArgsMessages: the usage errors must name the valid experiment
// set and the offending value, so a typo is self-correcting.
func TestValidateArgsMessages(t *testing.T) {
	err := validateArgs("bogus", 0, 3, 8)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, want := range []string{"bogus", "serve", "adapt", "kernel", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-exp error %q does not mention %q", err, want)
		}
	}
	if err := validateArgs("kernel", -3, 3, 8); err == nil || !strings.Contains(err.Error(), "-shards -3") {
		t.Errorf("shards range error = %v, want it to name -shards -3", err)
	}
	if err := validateArgs("bisect", 0, 0, 8); err == nil || !strings.Contains(err.Error(), "-perturb 0") {
		t.Errorf("perturb range error = %v, want it to name -perturb 0", err)
	}
	if err := validateArgs("contention", 0, 3, -1); err == nil || !strings.Contains(err.Error(), "-readers -1") {
		t.Errorf("readers range error = %v, want it to name -readers -1", err)
	}
	for _, exp := range experiments {
		if err := validateArgs(exp, 0, 3, 8); err != nil {
			t.Errorf("valid experiment %q rejected: %v", exp, err)
		}
	}
}

// TestCLIAcceptsProtocolsTable: the cheapest real experiment still runs and
// exits 0 through the refactored entry point.
func TestCLIAcceptsProtocolsTable(t *testing.T) {
	if code := realMain([]string{"-exp", "protocols"}); code != 0 {
		t.Fatalf("realMain(-exp protocols) = %d, want 0", code)
	}
}
