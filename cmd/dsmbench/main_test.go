package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCLIRejectsBadArgs pins the command's error edges: an unknown -exp or
// an out-of-range knob must exit 2 before any experiment runs, and the
// message must name what is valid.
func TestCLIRejectsBadArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown experiment", []string{"-exp", "bogus"}},
		{"empty experiment", []string{"-exp", ""}},
		{"misspelled serve", []string{"-exp", "server"}},
		{"negative shards", []string{"-exp", "kernel", "-shards", "-1"}},
		{"faults sharded", []string{"-exp", "faults", "-shards", "2"}},
		{"zero perturb", []string{"-exp", "bisect", "-perturb", "0"}},
		{"negative perturb", []string{"-exp", "bisect", "-perturb", "-2"}},
		{"zero readers", []string{"-exp", "contention", "-readers", "0"}},
		{"negative tune workers", []string{"-exp", "tune", "-workers", "-4"}},
		{"unknown tune workload", []string{"-exp", "tune", "-tuneworkload", "tsp"}},
		{"unknown tune protocol", []string{"-exp", "tune", "-tuneprotos", "li_hudak,nope"}},
		{"unknown tune topology", []string{"-exp", "tune", "-tunetopos", "mesh"}},
		{"unknown tune placement", []string{"-exp", "tune", "-tuneplace", "wild"}},
		{"unknown tune comm", []string{"-exp", "tune", "-tunecomm", "zip"}},
		{"unparseable flag", []string{"-exp"}},
		{"unknown flag", []string{"-frobnicate"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if code := realMain(c.args); code != 2 {
				t.Errorf("realMain(%v) = %d, want usage exit 2", c.args, code)
			}
		})
	}
}

// TestValidateArgsMessages: the usage errors must name the valid experiment
// set and the offending value, so a typo is self-correcting.
func TestValidateArgsMessages(t *testing.T) {
	err := validateArgs(defaultArgs("bogus"))
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, want := range []string{"bogus", "serve", "adapt", "kernel", "tune", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-exp error %q does not mention %q", err, want)
		}
	}
	perturb := func(exp string, mut func(*cliArgs)) cliArgs {
		a := defaultArgs(exp)
		mut(&a)
		return a
	}
	if err := validateArgs(perturb("kernel", func(a *cliArgs) { a.shards = -3 })); err == nil ||
		!strings.Contains(err.Error(), "-shards -3") {
		t.Errorf("shards range error = %v, want it to name -shards -3", err)
	}
	if err := validateArgs(perturb("faults", func(a *cliArgs) { a.shards = 2 })); err == nil ||
		!strings.Contains(err.Error(), "single-loop") {
		t.Errorf("faults shards error = %v, want it to name the single-loop constraint", err)
	}
	if err := validateArgs(perturb("bisect", func(a *cliArgs) { a.perturb = 0 })); err == nil ||
		!strings.Contains(err.Error(), "-perturb 0") {
		t.Errorf("perturb range error = %v, want it to name -perturb 0", err)
	}
	if err := validateArgs(perturb("contention", func(a *cliArgs) { a.readers = -1 })); err == nil ||
		!strings.Contains(err.Error(), "-readers -1") {
		t.Errorf("readers range error = %v, want it to name -readers -1", err)
	}
	if err := validateArgs(perturb("tune", func(a *cliArgs) { a.workers = -2 })); err == nil ||
		!strings.Contains(err.Error(), "-workers -2") {
		t.Errorf("workers range error = %v, want it to name -workers -2", err)
	}
	if err := validateArgs(perturb("tune", func(a *cliArgs) { a.tuneWorkload = "lu" })); err == nil ||
		!strings.Contains(err.Error(), "jacobi") || !strings.Contains(err.Error(), "serve") {
		t.Errorf("tune workload error = %v, want it to name the recordable workloads", err)
	}
	if err := validateArgs(perturb("tune", func(a *cliArgs) { a.tuneProtos = "nope" })); err == nil ||
		!strings.Contains(err.Error(), "li_hudak") {
		t.Errorf("tune protocol error = %v, want it to name the protocol set", err)
	}
	if err := validateArgs(perturb("tune", func(a *cliArgs) { a.tunePlace = "wild" })); err == nil ||
		!strings.Contains(err.Error(), "misplaced") {
		t.Errorf("tune placement error = %v, want it to name the placement set", err)
	}

	// A -cachedir colliding with a plain file is a usage error, not a
	// mid-sweep surprise.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateArgs(perturb("tune", func(a *cliArgs) { a.cacheDir = file })); err == nil ||
		!strings.Contains(err.Error(), "not a directory") {
		t.Errorf("cachedir error = %v, want it to name the file collision", err)
	}

	for _, exp := range experiments {
		if err := validateArgs(defaultArgs(exp)); err != nil {
			t.Errorf("valid experiment %q rejected: %v", exp, err)
		}
	}
}

// TestAxisList pins the grid-subset selector syntax.
func TestAxisList(t *testing.T) {
	for _, s := range []string{"all", "", "  all  "} {
		if got := axisList(s); got != nil {
			t.Errorf("axisList(%q) = %v, want nil (the whole axis)", s, got)
		}
	}
	got := axisList(" li_hudak, hbrc_mw ,,adaptive ")
	want := []string{"li_hudak", "hbrc_mw", "adaptive"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("axisList = %v, want %v", got, want)
	}
}

// TestCLIAcceptsProtocolsTable: the cheapest real experiment still runs and
// exits 0 through the refactored entry point.
func TestCLIAcceptsProtocolsTable(t *testing.T) {
	if code := realMain([]string{"-exp", "protocols"}); code != 0 {
		t.Fatalf("realMain(-exp protocols) = %d, want 0", code)
	}
}

// TestTuneSnapshotDeterministic is the dsmbench-level determinism property:
// the same workload and seed must emit a byte-identical BENCH_tune.json
// whatever the worker count, and a warm-cache re-run (which executes zero
// cells) must reproduce the same bytes again.
func TestTuneSnapshotDeterministic(t *testing.T) {
	dir := t.TempDir()
	t.Chdir(dir)
	cache := filepath.Join(dir, "cache")
	run := func(workers string, cached bool) []byte {
		cacheDir := ""
		if cached {
			cacheDir = cache
		}
		args := []string{"-exp", "tune", "-json", "-tuneworkload", "jacobi",
			"-tuneprotos", "li_hudak,migrate_thread,adaptive",
			"-workers", workers, "-cachedir", cacheDir}
		if code := realMain(args); code != 0 {
			t.Fatalf("realMain(%v) = %d, want 0", args, code)
		}
		raw, err := os.ReadFile(benchTuneFile)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	golden := run("1", false)
	if raw := run("7", false); string(raw) != string(golden) {
		t.Error("BENCH_tune.json differs between -workers 1 and -workers 7")
	}
	cold := run("0", true)
	if string(cold) != string(golden) {
		t.Error("BENCH_tune.json differs between cached and uncached sweeps")
	}
	warm := run("0", true)
	if string(warm) != string(golden) {
		t.Error("warm-cache BENCH_tune.json is not byte-identical to the cold run")
	}
}
