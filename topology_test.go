package dsmpm2_test

import (
	"fmt"
	"strings"
	"testing"

	"dsmpm2"
	"dsmpm2/internal/bench"
)

// runIncrementWorkload drives a small but communication-heavy workload (the
// quickstart counter: every node increments a shared word under a DSM lock)
// and returns its final virtual time and DSM stats.
func runIncrementWorkload(t *testing.T, cfg dsmpm2.Config) (dsmpm2.Time, dsmpm2.Stats) {
	t.Helper()
	cfg.Protocol = "li_hudak"
	sys := dsmpm2.MustNew(cfg)
	x := sys.MustMalloc(0, 8, nil)
	lock := sys.NewLock(0)
	for n := 0; n < sys.Nodes(); n++ {
		sys.Spawn(n, fmt.Sprintf("worker%d", n), func(th *dsmpm2.Thread) {
			for i := 0; i < 5; i++ {
				th.Acquire(lock)
				th.WriteUint64(x, th.ReadUint64(x)+1)
				th.Release(lock)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys.Now(), sys.Stats()
}

// TestUniformTopologyBitForBit: wrapping a profile in a Uniform topology
// must reproduce the historical single-profile configuration exactly — same
// virtual end time, same activity counters.
func TestUniformTopologyBitForBit(t *testing.T) {
	for _, prof := range dsmpm2.Networks {
		base := dsmpm2.Config{Nodes: 4, Network: prof, Seed: 7}
		wrapped := dsmpm2.Config{Nodes: 4, Topology: dsmpm2.UniformTopology(prof), Seed: 7}
		wantTime, wantStats := runIncrementWorkload(t, base)
		gotTime, gotStats := runIncrementWorkload(t, wrapped)
		if gotTime != wantTime {
			t.Errorf("%s: uniform topology time %v != profile time %v", prof.Name, gotTime, wantTime)
		}
		if gotStats != wantStats {
			t.Errorf("%s: uniform topology stats %+v != profile stats %+v", prof.Name, gotStats, wantStats)
		}
	}
}

// TestHierarchicalFaultCostsDiverge: under a two-cluster topology, faults
// crossing the backbone must cost measurably more than intra-cluster ones,
// and both classes must be attributed to the right link profile.
func TestHierarchicalFaultCostsDiverge(t *testing.T) {
	faults := bench.HierReadFaults(6, 2, dsmpm2.SISCISCI, dsmpm2.TCPFastEthernet, "li_hudak")
	if len(faults) != 2 {
		t.Fatalf("expected 2 link classes, have %+v", faults)
	}
	byLink := map[string]bench.LinkFault{}
	for _, f := range faults {
		byLink[f.Link] = f
	}
	intra, ok := byLink[dsmpm2.SISCISCI.Name]
	if !ok || intra.Count != 2 {
		t.Fatalf("intra class missing or miscounted: %+v", faults)
	}
	inter, ok := byLink[dsmpm2.TCPFastEthernet.Name]
	if !ok || inter.Count != 3 {
		t.Fatalf("inter class missing or miscounted: %+v", faults)
	}
	if inter.MeanTotalUS < 2*intra.MeanTotalUS {
		t.Errorf("inter-cluster fault (%.0fus) not measurably above intra (%.0fus)",
			inter.MeanTotalUS, intra.MeanTotalUS)
	}
	// Sanity: the intra-cluster fault matches the paper's uniform SCI cost
	// (Table 3 total: 194us, allow rounding slack), because inside one
	// cluster nothing changed.
	if intra.MeanTotalUS < 185 || intra.MeanTotalUS > 215 {
		t.Errorf("intra-cluster fault = %.0fus, want the Table 3 SCI ballpark (~194-207us)", intra.MeanTotalUS)
	}
}

// TestLinkMatrixAsymmetricMigration: an asymmetric matrix charges migration
// by direction — moving a thread over the degraded link costs more than
// moving it back.
func TestLinkMatrixAsymmetricMigration(t *testing.T) {
	topo := dsmpm2.LinkMatrixTopology(dsmpm2.BIPMyrinet).
		SetLink(0, 1, dsmpm2.TCPFastEthernet) // uplink degraded, downlink fast
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Topology: topo})
	var out, back dsmpm2.Duration
	sys.Spawn(0, "wanderer", func(th *dsmpm2.Thread) {
		start := th.Now()
		th.MigrateTo(1)
		out = th.Now().Sub(start)
		start = th.Now()
		th.MigrateTo(0)
		back = th.Now().Sub(start)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if out <= back {
		t.Errorf("degraded-uplink migration (%v) not slower than the fast return (%v)", out, back)
	}
}

// TestContentionQueuesSaturatedLink is the end-to-end contention acceptance:
// concurrent page transfers over one link serialize in virtual time, with
// observable queueing delay, while the same workload with the model off
// overlaps for free.
func TestContentionQueuesSaturatedLink(t *testing.T) {
	res := bench.Contention(dsmpm2.BIPMyrinet, 6)
	if res.MeanFaultOnUS <= res.MeanFaultOffUS {
		t.Errorf("contended mean fault (%.0fus) not above uncontended (%.0fus)",
			res.MeanFaultOnUS, res.MeanFaultOffUS)
	}
	if res.Waits == 0 || res.WaitTimeUS <= 0 {
		t.Errorf("saturated link produced no queueing: %+v", res)
	}
}

// TestTopologySizeMismatchRejected: a topology built for N nodes cannot be
// attached to a machine of a different size.
func TestTopologySizeMismatchRejected(t *testing.T) {
	topo := dsmpm2.HierarchicalTopology(dsmpm2.EvenClusters(4, 2), dsmpm2.SISCISCI, dsmpm2.TCPFastEthernet)
	_, err := dsmpm2.New(dsmpm2.Config{Nodes: 6, Topology: topo})
	if err == nil || !strings.Contains(err.Error(), "built for 4 nodes") {
		t.Fatalf("mismatched topology not rejected: %v", err)
	}
}

// TestTopologyImpliesNodeCount: a size-bound topology fills in Config.Nodes
// when the caller leaves it zero.
func TestTopologyImpliesNodeCount(t *testing.T) {
	topo := dsmpm2.HierarchicalTopology(dsmpm2.EvenClusters(6, 2), dsmpm2.SISCISCI, dsmpm2.TCPFastEthernet)
	sys, err := dsmpm2.New(dsmpm2.Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Nodes() != 6 {
		t.Fatalf("Nodes() = %d, want 6 inferred from the topology", sys.Nodes())
	}
}

// TestSystemTopologyAccessors: the facade exposes the topology and per-link
// profiles.
func TestSystemTopologyAccessors(t *testing.T) {
	topo := dsmpm2.HierarchicalTopology(dsmpm2.EvenClusters(4, 2), dsmpm2.SISCISCI, dsmpm2.TCPFastEthernet)
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, Topology: topo})
	if sys.Network() != nil {
		t.Error("heterogeneous system must not report a uniform profile")
	}
	if sys.Topology() != topo {
		t.Error("Topology accessor lost the configured topology")
	}
	if sys.Link(0, 1) != dsmpm2.SISCISCI || sys.Link(0, 2) != dsmpm2.TCPFastEthernet {
		t.Error("per-link lookup resolved the wrong profiles")
	}
	uni := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Network: dsmpm2.BIPMyrinet})
	if uni.Network() != dsmpm2.BIPMyrinet {
		t.Error("uniform system must still report its profile")
	}
}
