package dsmpm2_test

// Home-migration tests: the profiler-driven adaptive placement must keep
// sequential correctness (the conformance suite covers every protocol; the
// golden trace here pins the virtual-time behaviour of the pinned workload),
// replay bit-identically, and survive the old home crashing at any point
// around the migration handshake, resolving exactly once.

import (
	"fmt"
	"testing"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
	"dsmpm2/internal/bench"
)

// goldenAdaptJacobiConfig is the pinned migration workload: 16 nodes, every
// grid row deliberately misplaced on node 0, entry consistency (whose
// acquire-time refetches make placement dominate the fetch count), profiler
// and decision engine on.
func goldenAdaptJacobiConfig() jacobi.Config {
	return jacobi.Config{
		N: 24, Iterations: 8, Nodes: 16,
		Network: dsmpm2.BIPMyrinet, Protocol: "entry_mw", Seed: 7,
		MisplaceHomes: true, AdaptiveHomes: true,
	}
}

const (
	// goldenAdaptJacobiFingerprint pins the migration-enabled run's
	// TimingLog + stats digest, like golden_test.go pins the fault-free
	// hbrc_mw run: any change to the profiler's epoch fold, the decision
	// engine, or the svcMigrateHome handshake that moves a single virtual
	// timestamp (or a single counter) shows up here immediately. Captured
	// at the introduction of the profiler (PR 5).
	goldenAdaptJacobiFingerprint = "a8a975ed1789c8dba1a8ecf2b0e1d380564ce297e7904ef10f0caef29770a6dc"
	// goldenAdaptJacobiElapsed is the run's total virtual time.
	goldenAdaptJacobiElapsed = dsmpm2.Time(7006758)
	// goldenAdaptJacobiMigrations is the number of home migrations the
	// decision engine performs on this workload: the misplaced row pages of
	// both grids (those whose writer is not node 0) move onto their writers
	// once the stability window closes.
	goldenAdaptJacobiMigrations = int64(44)
)

// TestGoldenAdaptiveJacobiTrace replays the pinned migration workload and
// requires the exact fault timings, final clock and migration count.
func TestGoldenAdaptiveJacobiTrace(t *testing.T) {
	res, err := jacobi.Run(goldenAdaptJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := jacobi.SolveSerial(24, 8); res.Checksum != want {
		t.Fatalf("checksum %v, want %v", res.Checksum, want)
	}
	if res.Stats.HomeMigrations != goldenAdaptJacobiMigrations {
		t.Errorf("home migrations = %d, want %d (decision engine changed)",
			res.Stats.HomeMigrations, goldenAdaptJacobiMigrations)
	}
	if res.Elapsed != goldenAdaptJacobiElapsed {
		t.Errorf("virtual elapsed = %d, want %d (migration timing changed)",
			res.Elapsed, goldenAdaptJacobiElapsed)
	}
	if fp := bench.TraceFingerprint(res.System); fp != goldenAdaptJacobiFingerprint {
		t.Errorf("trace fingerprint = %s,\nwant %s\n(migration-enabled replay diverged from the golden trace)",
			fp, goldenAdaptJacobiFingerprint)
	}
}

// TestAdaptiveJacobiReplayIdentical: the migration-enabled run is
// bit-identical across replays of the same seed — the acceptance property.
func TestAdaptiveJacobiReplayIdentical(t *testing.T) {
	a, err := jacobi.Run(goldenAdaptJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := jacobi.Run(goldenAdaptJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := bench.TraceFingerprint(a.System), bench.TraceFingerprint(b.System); fa != fb {
		t.Fatalf("same-seed migration replays diverged:\n%s\n%s", fa, fb)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("elapsed %d vs %d on replay", a.Elapsed, b.Elapsed)
	}
}

// TestAdaptiveJacobiReducesFetches: the headline effect at test scale — the
// decision engine must cut the misplaced workload's remote fetches by at
// least 1.5x (the acceptance threshold the 64-node bench smoke also pins).
func TestAdaptiveJacobiReducesFetches(t *testing.T) {
	cfg := goldenAdaptJacobiConfig()
	cfg.AdaptiveHomes = false
	static, err := jacobi.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := jacobi.Run(goldenAdaptJacobiConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, a := static.Stats.RemoteFetches, adaptive.Stats.RemoteFetches
	if a <= 0 || float64(s)/float64(a) < 1.5 {
		t.Fatalf("remote-fetch reduction %.2fx < 1.5x (static %d, adaptive %d, migrations %d)",
			float64(s)/float64(a), s, a, adaptive.Stats.HomeMigrations)
	}
	if adaptive.Stats.MisplacedFetches >= static.Stats.RemoteFetches {
		t.Fatalf("misplaced-fetch accounting out of range: %d", adaptive.Stats.MisplacedFetches)
	}
}

// faultyMigrationRun drives a 4-node producer-consumer workload whose single
// page is homed on node 1 (the old home) while node 2 writes it every epoch,
// with a fault plan crashing node 1 at the given time and restarting it
// later. Returns the final value read after the run and the fingerprint.
func faultyMigrationRun(t *testing.T, crashAt dsmpm2.Duration) (uint64, string, dsmpm2.Stats, dsmpm2.RecoveryStats) {
	t.Helper()
	const nodes, rounds = 4, 10
	sys := dsmpm2.MustNew(dsmpm2.Config{
		Nodes: nodes, Protocol: "hbrc_mw", Seed: 9, AdaptiveHomes: true,
	})
	base := sys.MustMalloc(1, dsmpm2.PageSize, &dsmpm2.Attr{Protocol: -1, Home: 1})
	bar := sys.NewBarrier(nodes)

	// lastDone[n] is node n's checkpoint: the last round it completed.
	lastDone := make([]int, nodes)
	for i := range lastDone {
		lastDone[i] = -1
	}
	runWorker := func(th *dsmpm2.Thread, node, start int) {
		for r := start; r < rounds; r++ {
			if node == 2 {
				th.WriteUint64(base, uint64(1000+r))
			} else if node != 1 {
				th.ReadUint64(base)
			}
			th.Flush()
			lastDone[node] = r
			th.BarrierAs(bar, node, r)
		}
	}
	plan := dsmpm2.NewFaultPlan(5)
	plan.Crash(dsmpm2.Time(crashAt), 1)
	plan.Restart(dsmpm2.Time(crashAt)+dsmpm2.Time(3*dsmpm2.Millisecond), 1)
	if err := sys.InjectFaults(plan, dsmpm2.FaultOptions{
		OnRestart: func(node int) {
			done := lastDone[node]
			sys.Spawn(node, fmt.Sprintf("w%d.r", node), func(th *dsmpm2.Thread) {
				if done >= 0 {
					th.BarrierAs(bar, node, done)
				}
				runWorker(th, node, done+1)
			})
		},
	}); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		n := n
		sys.Spawn(n, fmt.Sprintf("w%d", n), func(th *dsmpm2.Thread) {
			runWorker(th, n, 0)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("crashAt=%v: %v", crashAt, err)
	}
	var got uint64
	sys.Spawn(3, "check", func(th *dsmpm2.Thread) { got = th.ReadUint64(base) })
	if err := sys.Run(); err != nil {
		t.Fatalf("crashAt=%v readback: %v", crashAt, err)
	}
	return got, bench.TraceFingerprint(sys), sys.Stats(), sys.RecoveryStats()
}

// TestFaultyMigrationResolvesOnce sweeps the old home's crash time across a
// window covering the epochs where the 1->2 home migration is decided and
// the svcMigrateHome handshake runs. Whatever instant the crash lands on —
// before the decision, mid-handshake, after commit — the run must complete
// with the correct final value (a pooled-frame double-free would corrupt
// it), the handshake must resolve exactly once (by the handshake itself or
// by the recovery sweep, never both: the page ends at node 2 either way and
// is never re-homed twice in one epoch), and the replay must be
// bit-identical.
func TestFaultyMigrationResolvesOnce(t *testing.T) {
	const rounds = 10
	for us := 200; us <= 3400; us += 200 {
		crashAt := dsmpm2.Duration(us) * dsmpm2.Microsecond
		t.Run(fmt.Sprintf("crashAt=%dus", us), func(t *testing.T) {
			got, fp, st, rec := faultyMigrationRun(t, crashAt)
			if want := uint64(1000 + rounds - 1); got != want {
				t.Fatalf("final value %d, want %d (stats %+v, recovery %+v)", got, want, st, rec)
			}
			if st.HomeMigrations > 2 {
				t.Fatalf("page re-homed %d times — the handshake did not resolve once (recovery %+v)",
					st.HomeMigrations, rec)
			}
			got2, fp2, _, _ := faultyMigrationRun(t, crashAt)
			if got2 != got || fp2 != fp {
				t.Fatalf("faulty-migration replay diverged: value %d vs %d", got, got2)
			}
		})
	}
}
