module dsmpm2

go 1.24
