package dsmpm2_test

// Regression tests for the configurable retry timing of recovery-mode
// protocol waits: exponential backoff with seeded jitter must still converge
// under a loss-heavy fault plan, stay bit-identically replayable, and the
// zero-value tuning must reproduce the historical flat timeout exactly.

import (
	"testing"

	"dsmpm2"
	"dsmpm2/internal/bench"
)

// runLossy drives a loss-heavy data-plane workload with the given retry
// tuning: four writer nodes share pages homed on node 1 and every
// writer<->home link drops 45% of its messages both ways, so page fetches
// and release diffs routinely need several retries. Per the documented fault
// model the synchronization manager (node 0) keeps reliable links. Returns
// the system for fingerprinting after verifying the data converged.
func runLossy(t *testing.T, tune dsmpm2.RecoveryTuning) *dsmpm2.System {
	t.Helper()
	const (
		home    = 1
		writers = 4
		rounds  = 12
	)
	sys := dsmpm2.MustNew(dsmpm2.Config{
		Nodes: 2 + writers, Protocol: "hbrc_mw", Seed: 5, Recovery: tune,
	})
	plan := dsmpm2.NewFaultPlan(21)
	for w := 2; w < 2+writers; w++ {
		plan.Loss(0, w, home, 0.45, 0)
		plan.Loss(0, home, w, 0.45, 0)
	}
	if err := sys.InjectFaults(plan, dsmpm2.FaultOptions{}); err != nil {
		t.Fatal(err)
	}

	// One page per writer, all homed on the lossy node.
	pages := make([]dsmpm2.Addr, writers)
	for i := range pages {
		pages[i] = sys.MustMalloc(home, dsmpm2.PageSize, &dsmpm2.Attr{Protocol: -1, Home: home})
	}
	lock := sys.NewLock(0)
	for i := 0; i < writers; i++ {
		i := i
		sys.Spawn(2+i, "writer", func(th *dsmpm2.Thread) {
			for r := 0; r < rounds; r++ {
				th.Acquire(lock)
				// Read a neighbour's page (fetch over a lossy link), then
				// bump our own counter (diff home over a lossy link).
				peer := th.ReadUint64(pages[(i+1)%writers])
				th.WriteUint64(pages[i]+8, peer)
				th.WriteUint64(pages[i], th.ReadUint64(pages[i])+1)
				th.Release(lock)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("lossy run wedged: %v", err)
	}

	var got [writers]uint64
	sys.Spawn(0, "reader", func(th *dsmpm2.Thread) {
		th.Acquire(lock)
		for i := range got {
			got[i] = th.ReadUint64(pages[i])
		}
		th.Release(lock)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != rounds {
			t.Fatalf("writer %d counter = %d, want %d (lossy run lost updates; faults %+v)",
				i, v, rounds, sys.FaultStats())
		}
	}
	return sys
}

// backoffTuning is the exercised non-trivial schedule: exponential growth,
// a cap, and seeded jitter.
func backoffTuning() dsmpm2.RecoveryTuning {
	return dsmpm2.RecoveryTuning{
		Timeout:    200 * dsmpm2.Microsecond,
		Backoff:    2,
		RetryMax:   2 * dsmpm2.Millisecond,
		Jitter:     50 * dsmpm2.Microsecond,
		JitterSeed: 9,
	}
}

// TestBackoffConvergesUnderHeavyLoss is the satellite's regression: with
// exponential backoff and jitter configured through Config, a loss-heavy
// plan still converges to the correct data, the retry path is actually
// exercised, and the jittered schedule replays bit-identically.
func TestBackoffConvergesUnderHeavyLoss(t *testing.T) {
	sys := runLossy(t, backoffTuning())
	if sys.RecoveryStats().Retries == 0 {
		t.Fatalf("no retries under 45%% loss — the regression is not exercising the retry path")
	}
	if sys.FaultStats().Dropped == 0 {
		t.Fatalf("no messages dropped — the plan is not loss-heavy")
	}
	// Replay determinism: the jittered delays come from a seeded PRNG, so
	// the same config must reproduce the same trace bit-for-bit.
	sys2 := runLossy(t, backoffTuning())
	if a, b := bench.TraceFingerprint(sys), bench.TraceFingerprint(sys2); a != b {
		t.Fatalf("jittered replay diverged: %s vs %s", a, b)
	}
}

// TestBackoffTuningChangesTiming confirms the tuning is live: a flat-timeout
// run and a backoff+jitter run of the same lossy workload must produce
// different traces (if they didn't, the knobs would be dead code).
func TestBackoffTuningChangesTiming(t *testing.T) {
	flat := runLossy(t, dsmpm2.RecoveryTuning{Timeout: 200 * dsmpm2.Microsecond})
	tuned := runLossy(t, backoffTuning())
	if a, b := bench.TraceFingerprint(flat), bench.TraceFingerprint(tuned); a == b {
		t.Fatalf("backoff+jitter tuning did not change the trace — knobs appear dead")
	}
}

// TestZeroTuningMatchesLegacyFlatTimeout pins the compatibility property the
// goldens rely on: the zero-value RecoveryTuning and an explicit Backoff=1
// (flat schedule, no jitter) are the same schedule, bit-for-bit.
func TestZeroTuningMatchesLegacyFlatTimeout(t *testing.T) {
	zero := runLossy(t, dsmpm2.RecoveryTuning{})
	flat := runLossy(t, dsmpm2.RecoveryTuning{Backoff: 1})
	if a, b := bench.TraceFingerprint(zero), bench.TraceFingerprint(flat); a != b {
		t.Fatalf("Backoff=1 and zero tuning diverge: %s vs %s", a, b)
	}
}
