// Command migration demonstrates PM2's preemptive thread migration and the
// migrate_thread consistency protocol (Figure 3 of the paper): a thread
// faults on remote data and simply moves to it, with a cost tied to its
// stack size (Table 4).
//
// Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"dsmpm2"
)

func main() {
	for _, network := range []*dsmpm2.NetworkProfile{dsmpm2.BIPMyrinet, dsmpm2.SISCISCI} {
		fmt.Printf("--- %s ---\n", network.Name)
		for _, stack := range []int{1 << 10, 16 << 10, 64 << 10} {
			sys, err := dsmpm2.New(dsmpm2.Config{
				Nodes:    2,
				Network:  network,
				Protocol: "migrate_thread",
			})
			if err != nil {
				log.Fatal(err)
			}
			data := sys.MustMalloc(1, 8, nil) // lives on node 1
			var before, after int
			var took dsmpm2.Duration
			sys.SpawnStack(0, "wanderer", stack, func(t *dsmpm2.Thread) {
				before = t.Node()
				start := t.Now()
				t.WriteUint64(data, 7) // faults; protocol migrates the thread
				took = t.Now().Sub(start)
				after = t.Node()
			})
			if err := sys.Run(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("stack %5d B: node %d -> node %d in %v (fault + migration + overhead)\n",
				stack, before, after, took)
		}
		fmt.Println()
	}
	fmt.Println("Migration cost grows with the thread's stack size, as in Section 4:")
	fmt.Println("\"this migration time is closely related to the stack size of the thread\".")
}
