// Command loadbalance demonstrates the PM2 feature that motivates
// preemptive thread migration in Section 2.1: "generic policies for dynamic
// load balancing, independently of the applications: the load of each
// processing node can be evaluated according to some measure, and balanced
// using preemptive migration."
//
// Eight compute-bound threads start on node 0 of a four-node cluster; the
// balancer daemon samples per-node load and migrates threads (at their next
// safe point, carrying their stacks to the same iso-addresses) until the
// load evens out.
//
// Run with:
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"dsmpm2"
)

func run(balance bool) (dsmpm2.Time, map[int]int) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, Network: dsmpm2.SISCISCI})
	rt := sys.Runtime()
	final := map[int]int{}
	var threads []*dsmpm2.Thread
	for i := 0; i < 8; i++ {
		t := sys.Spawn(0, fmt.Sprintf("worker%d", i), func(t *dsmpm2.Thread) {
			for c := 0; c < 50; c++ {
				t.Compute(dsmpm2.Millisecond)
			}
		})
		t.PM2().SetMigratable(true)
		threads = append(threads, t)
	}
	if balance {
		rt.StartBalancer(500 * dsmpm2.Microsecond)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	for _, t := range threads {
		final[t.Node()]++
	}
	return sys.Now(), final
}

func main() {
	without, placementW := run(false)
	with, placement := run(true)
	fmt.Printf("8 compute threads, all started on node 0 of a 4-node cluster\n\n")
	fmt.Printf("without balancer: finished at %8.1f ms, final placement %v\n",
		float64(without)/1e6, placementW)
	fmt.Printf("with balancer:    finished at %8.1f ms, final placement %v\n",
		float64(with)/1e6, placement)
	fmt.Printf("\nspeedup: %.2fx — preemptive migration spread the load across the cluster\n",
		float64(without)/float64(with))
}
