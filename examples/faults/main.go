// Command faults walks through the fault-injection and recovery subsystem:
// the same deterministic platform that replays the paper's latencies can
// kill nodes, partition links and lose messages mid-run — and, because the
// whole simulation is driven by seeds, replay the exact same disaster as
// many times as it takes to understand it.
//
// The walkthrough runs the restart-aware Jacobi kernel (all grid rows homed
// on the protected node 0 under home-based release consistency) against a
// fault plan that crashes two worker nodes mid-computation, partitions the
// two halves of the cluster for a while, and restarts the dead nodes. The
// run still produces the sequentially-correct answer: committed iterations
// live on the protected home, restarted workers rejoin at the barrier
// generation the cluster is in and redo at most the one iteration whose
// flush the crash interrupted.
//
// Run with:
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
)

func main() {
	const (
		nodes = 8
		n     = 24 // grid dimension
		iters = 8
	)

	// A declarative fault plan. Times are offsets from the start of the
	// compute phase; the plan's seed drives any probabilistic loss, so the
	// same plan + the same simulation seed replays bit-identically.
	ms := func(v int) dsmpm2.Time { return dsmpm2.Time(v) * dsmpm2.Time(dsmpm2.Millisecond) }
	plan := dsmpm2.NewFaultPlan(11)
	plan.Crash(ms(2), 3)        // node 3 fail-stops 2ms in...
	plan.Restart(ms(9), 3)      // ...and comes back cold at 9ms
	plan.Crash(ms(4), 6)        // node 6 dies while 3 is still down
	plan.Restart(ms(12), 6)     //
	plan.Partition(ms(6), 1, 5) // links 1<->5 cut for 2ms; queued traffic
	plan.Heal(ms(8), 1, 5)      // is delivered FIFO when the link heals

	res, err := jacobi.Run(jacobi.Config{
		N: n, Iterations: iters, Nodes: nodes,
		Network:   dsmpm2.BIPMyrinet,
		Protocol:  "hbrc_mw", // home-based: committed data survives on node 0
		Seed:      7,
		FaultPlan: plan,
	})
	if err != nil {
		log.Fatal(err)
	}

	want := jacobi.SolveSerial(n, iters)
	fmt.Printf("checksum: %v (sequential oracle %v, correct=%v)\n",
		res.Checksum, want, res.Checksum == want)
	fmt.Printf("virtual time: %.2f ms\n", float64(res.Elapsed)/1e6)

	fs, rs := res.Faults, res.Recovery
	fmt.Printf("\nfault layer:   %d crashes, %d restarts, %d messages dropped at dead nodes,\n",
		fs.Crashes, fs.Restarts, fs.DeadDrops)
	fmt.Printf("               %d held on partitioned links (%.0f us of partition delay)\n",
		fs.Held, fs.HeldTime.Microseconds())
	fmt.Printf("recovery:      %d pages re-homed, %d lost, %d protocol retries\n",
		rs.ReHomed, rs.Lost, rs.Retries)

	// Replays are bit-identical: run it again and compare the clocks.
	again, err := jacobi.Run(jacobi.Config{
		N: n, Iterations: iters, Nodes: nodes,
		Network: dsmpm2.BIPMyrinet, Protocol: "hbrc_mw", Seed: 7,
		FaultPlan: plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay elapsed: %.2f ms (identical=%v)\n",
		float64(again.Elapsed)/1e6, again.Elapsed == res.Elapsed)

	fmt.Println("\nThe same experiment is scriptable as:")
	fmt.Println("  go run ./cmd/dsmbench -exp faults -nodes 16 -clusters 2 -mtbf 10 -json")
}
