// Command multicluster runs the same protocol stack the paper calibrates on
// uniform clusters over a heterarchical machine the paper only gestures at:
// two SCI clusters joined by a TCP/Fast Ethernet backbone. The read-fault
// cost now depends on which link the page crosses — faults served inside a
// cluster stay at SCI latency while faults crossing the backbone pay the
// Ethernet price — without a single change to the li_hudak protocol.
//
// Run with:
//
//	go run ./examples/multicluster
package main

import (
	"fmt"
	"log"

	"dsmpm2"
)

func main() {
	const nodes = 6 // two clusters of three: {0,1,2} and {3,4,5}
	topo := dsmpm2.HierarchicalTopology(
		dsmpm2.EvenClusters(nodes, 2),
		dsmpm2.SISCISCI,        // fast links inside each cluster
		dsmpm2.TCPFastEthernet, // slow backbone between clusters
	)
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:    nodes,
		Topology: topo,
		Protocol: "li_hudak",
	})
	if err != nil {
		log.Fatal(err)
	}

	// One page per reader, all homed on node 0 in the first cluster, so
	// each fault is an independent transfer from node 0 to the reader.
	for r := 1; r < nodes; r++ {
		page := sys.MustMalloc(0, dsmpm2.PageSize, nil)
		sys.Spawn(r, fmt.Sprintf("reader%d", r), func(t *dsmpm2.Thread) {
			t.ReadUint64(page)
		})
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology: %s\n", sys.Topology().Name())
	fmt.Printf("%-20s %8s %18s\n", "link class", "faults", "mean total (us)")
	var intraUS, interUS float64
	for _, s := range sys.Timings().ByLink() {
		if s.Link == "" {
			continue
		}
		us := s.MeanTotal.Microseconds()
		fmt.Printf("%-20s %8d %18.0f\n", s.Link, s.Count, us)
		switch s.Link {
		case dsmpm2.SISCISCI.Name:
			intraUS = us
		case dsmpm2.TCPFastEthernet.Name:
			interUS = us
		}
	}
	if intraUS > 0 && interUS > 0 {
		fmt.Printf("crossing the backbone costs %.1fx an intra-cluster fault\n", interUS/intraUS)
	}
}
