// Command tsp runs the paper's Figure 4 experiment: branch-and-bound TSP
// with randomly placed cities, one application thread per node, comparing
// the four sequential/release-consistency protocols on BIP/Myrinet.
//
// Run with:
//
//	go run ./examples/tsp [-cities 11] [-nodes 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"dsmpm2"
	"dsmpm2/internal/apps/tsp"
)

func main() {
	cities := flag.Int("cities", 11, "number of cities (the paper uses 14)")
	nodes := flag.Int("nodes", 4, "cluster nodes (one thread per node)")
	seed := flag.Int64("seed", 42, "distance/simulation seed")
	flag.Parse()

	serial := tsp.SolveSerial(tsp.Distances(*cities, *seed))
	fmt.Printf("TSP, %d cities, %d nodes, BIP/Myrinet (serial optimum %d)\n\n",
		*cities, *nodes, serial)
	fmt.Printf("%-16s %14s %12s %12s %12s\n",
		"protocol", "time(ms)", "expansions", "page xfers", "migrations")

	for _, proto := range []string{"li_hudak", "erc_sw", "hbrc_mw", "migrate_thread"} {
		res, err := tsp.Run(tsp.Config{
			Cities:   *cities,
			Seed:     *seed,
			Nodes:    *nodes,
			Network:  dsmpm2.BIPMyrinet,
			Protocol: proto,
		})
		if err != nil {
			log.Fatalf("[%s] %v", proto, err)
		}
		if res.BestCost != serial {
			log.Fatalf("[%s] found %d, serial optimum is %d", proto, res.BestCost, serial)
		}
		fmt.Printf("%-16s %14.2f %12d %12d %12d\n",
			proto, float64(res.Elapsed)/1e6, res.Expansions,
			res.Stats.PageSends, res.Stats.Migrations)
	}
	fmt.Println("\nAs in Figure 4: the page-based protocols beat migrate_thread, whose")
	fmt.Println("threads all migrate to the node holding the shared bound and overload it.")
}
