// Command quickstart mirrors the paper's Figure 2: select a built-in
// protocol (li_hudak), share an integer across the cluster, and increment it
// from every node under a DSM lock.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsmpm2"
)

func main() {
	sys, err := dsmpm2.New(dsmpm2.Config{
		Nodes:    4,
		Network:  dsmpm2.BIPMyrinet,
		Protocol: "li_hudak", // pm2_dsm_set_default_protocol(li_hudak)
	})
	if err != nil {
		log.Fatal(err)
	}

	// int x = 34; inside BEGIN_DSM_DATA / END_DSM_DATA.
	x := sys.MustMalloc(0, 8, nil)
	lock := sys.NewLock(0)
	sys.Spawn(0, "init", func(t *dsmpm2.Thread) { t.WriteUint64(x, 34) })
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	// Every node increments x a few times; the protocol keeps it coherent.
	for n := 0; n < sys.Nodes(); n++ {
		node := n
		sys.Spawn(node, fmt.Sprintf("worker%d", node), func(t *dsmpm2.Thread) {
			for i := 0; i < 5; i++ {
				t.Acquire(lock)
				t.WriteUint64(x, t.ReadUint64(x)+1)
				t.Release(lock)
			}
		})
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	var final uint64
	sys.Spawn(0, "report", func(t *dsmpm2.Thread) { final = t.ReadUint64(x) })
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("x = %d (started at 34, 4 nodes x 5 increments)\n", final)
	fmt.Printf("virtual time: %v\n", sys.Now())
	fmt.Printf("faults: %d read, %d write; page transfers: %d; invalidations: %d\n",
		st.ReadFaults, st.WriteFaults, st.PageSends, st.Invalidations)
}
