// Command customproto demonstrates the paper's Section 2.3: building a new
// consistency protocol out of the component routines and the core toolbox,
// registering it with dsm_create_protocol, and selecting among protocols
// dynamically at run time — no recompilation involved.
//
// The protocol built here, home_push, is a simplified home-based design:
// read faults replicate from the home, write faults grant a writable copy
// home-based style (the home keeps ownership), and the lock-release action
// pushes each written page home as one whole-page diff; the home applies it
// and eagerly invalidates the remaining readers. It trades hbrc_mw's
// twin/diff machinery for whole-page shipping — simpler, heavier on the
// wire, and assembled entirely from hooks.
//
// Run with:
//
//	go run ./examples/customproto
package main

import (
	"fmt"
	"log"

	"dsmpm2"
	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

// newHomePush assembles the protocol from hooks and returns its id.
func newHomePush(sys *dsmpm2.System) dsmpm2.ProtoID {
	d := sys.DSM()
	dirty := make([]map[core.Page]bool, sys.Nodes())
	for n := range dirty {
		dirty[n] = make(map[core.Page]bool)
	}
	return sys.CreateProtocol(&core.Hooks{
		ProtoName: "home_push",
		OnReadFault: func(f *core.Fault) {
			core.FetchPage(f, false)
		},
		OnWriteFault: func(f *core.Fault) {
			core.FetchPage(f, true)
			dirty[f.Node][f.Page] = true
		},
		OnReadServer: func(r *core.Request) {
			e, _ := core.ServeWhenOwner(r)
			e.AddCopyset(r.From)
			core.SendPage(r, e, r.From, memory.ReadOnly, false, core.NodeSet{})
			e.Unlock(r.Thread)
		},
		OnWriteServer: func(r *core.Request) {
			// Home-based: grant a writable copy, keep ownership.
			e, _ := core.ServeWhenOwner(r)
			e.AddCopyset(r.From)
			core.SendPage(r, e, r.From, memory.ReadWrite, false, core.NodeSet{})
			e.Unlock(r.Thread)
		},
		OnInvalidate:  func(iv *core.Invalidate) { core.DropCopy(iv) },
		OnReceivePage: func(pm *core.PageMsg) { core.InstallPage(pm) },
		OnLockRelease: func(s *core.SyncEvent) {
			// Ship every written page home as a whole-page diff and
			// drop our writable copy; the home then invalidates the
			// other readers (see OnDiffServer).
			for pg := range dirty[s.Node] {
				delete(dirty[s.Node], pg)
				home, _, _ := d.PageInfo(pg)
				frame := d.Space(s.Node).Frame(pg)
				if frame == nil || home == s.Node {
					continue
				}
				diff := &memory.Diff{Page: pg}
				diff.MergeRecorded(0, frame.Data)
				core.SendDiffsHome(d, s.Thread, home, []*memory.Diff{diff}, true)
				d.Space(s.Node).Drop(pg)
			}
		},
		OnDiffServer: func(dm *core.DiffMsg) {
			core.ApplyDiffs(dm)
			for _, df := range dm.Diffs {
				e := d.Entry(dm.Node, df.Page)
				e.Lock(dm.Thread)
				cs := e.TakeCopyset()
				cs.Remove(dm.From)
				e.Unlock(dm.Thread)
				core.InvalidateCopies(d, dm.Thread, df.Page, cs, -1)
			}
		},
	})
}

func main() {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, Network: dsmpm2.SISCISCI})
	homePush := newHomePush(sys)
	liHudak, _ := sys.Protocol("li_hudak")

	fmt.Printf("%-12s %10s %12s %12s %12s\n",
		"protocol", "counter", "page xfers", "diff bytes", "time(us)")
	for _, pid := range []dsmpm2.ProtoID{homePush, liHudak} {
		// Section 2.3's dynamic selection: the protocol is picked per
		// allocation, at run time.
		x, err := sys.Malloc(0, 8, &dsmpm2.Attr{Protocol: pid, Home: 0})
		if err != nil {
			log.Fatal(err)
		}
		lock := sys.NewLock(0)
		before := sys.Stats()
		start := sys.Now()
		for n := 0; n < sys.Nodes(); n++ {
			sys.Spawn(n, fmt.Sprintf("w%d", n), func(t *dsmpm2.Thread) {
				for i := 0; i < 3; i++ {
					t.Acquire(lock)
					t.WriteUint64(x, t.ReadUint64(x)+1)
					t.Release(lock)
				}
			})
		}
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		var got uint64
		sys.Spawn(0, "verify", func(t *dsmpm2.Thread) { got = t.ReadUint64(x) })
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		after := sys.Stats()
		fmt.Printf("%-12s %10d %12d %12d %12.0f\n",
			sys.DSM().RegistryName(pid), got,
			after.PageSends-before.PageSends,
			after.DiffBytes-before.DiffBytes,
			float64(sys.Now()-start)/1000)
		if got != 12 {
			log.Fatalf("protocol %d broke consistency: counter = %d, want 12", pid, got)
		}
	}
	fmt.Println("\nhome_push was assembled from hook routines and the core toolbox")
	fmt.Println("(Section 2.3); both protocols coexist in one application.")
}
