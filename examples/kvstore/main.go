// Command kvstore walks through the serving-scale workload: a key/value
// store sharded over shared pages (one bucket per page, guarded by a
// per-bucket entry-consistency lock), driven by an open-loop trace of
// Zipf-skewed requests with Poisson arrivals and a mid-run hot-key churn.
//
// Where the SPLASH-style examples report a checksum and an elapsed time,
// the interesting output here is the latency distribution: every request's
// completion time relative to its scheduled arrival lands in a fixed-grid
// histogram (dsmpm2.System.OpHist), so the p50/p95/p99 shown below are
// deterministic — run the example twice and the numbers are bit-identical.
//
// The demo serves the same trace twice from a deliberately bad placement
// (every bucket homed on node 0):
//
//   - static: the placement is frozen; every acquire by nodes 1..3 fetches
//     the bucket page across the wire, the servers saturate, and the open
//     loop piles queueing delay into the tail;
//   - adaptive: the sharing-pattern profiler re-homes each bucket onto its
//     serving node at the epoch barriers, the hot buckets turn local
//     mid-run, and the tail collapses.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"dsmpm2"
	"dsmpm2/internal/apps/kvstore"
)

func run(adaptive bool) kvstore.Result {
	res, err := kvstore.Run(kvstore.Config{
		Nodes:         4,
		Buckets:       16,
		Keys:          512,
		Requests:      1600,
		Epochs:        8,
		Phases:        2, // the hot set moves once, mid-trace
		Seed:          11,
		MisplaceHomes: true,
		AdaptiveHomes: adaptive,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	static := run(false)
	adaptive := run(true)

	// Both runs must agree with the serial last-put-wins oracle: per-key
	// requests serialize through one bucket lock on one server queue.
	oracle, hot, err := kvstore.ServeSerial(kvstore.Config{
		Nodes: 4, Buckets: 16, Keys: 512, Requests: 1600,
		Epochs: 8, Phases: 2, Seed: 11, MisplaceHomes: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []kvstore.Result{static, adaptive} {
		if r.Checksum != oracle {
			log.Fatalf("checksum %#x does not match the serial oracle %#x", r.Checksum, oracle)
		}
	}

	us := func(d dsmpm2.Duration) float64 { return float64(d) / 1e3 }
	fmt.Println("placement  op        count    p50(us)    p95(us)    p99(us)")
	for _, row := range []struct {
		name string
		res  kvstore.Result
	}{{"static", static}, {"adaptive", adaptive}} {
		for _, o := range row.res.Ops {
			fmt.Printf("%-10s %-6s %8d %10.1f %10.1f %10.1f\n",
				row.name, o.Kind, o.Count, us(o.P50), us(o.P95), us(o.P99))
		}
	}
	fmt.Printf("\nhot keys (trace tally): %v\n", hot)
	fmt.Printf("home migrations: %d (static: %d)\n",
		adaptive.Stats.HomeMigrations, static.Stats.HomeMigrations)
	fmt.Printf("get p99: static %.1fus -> adaptive %.1fus\n",
		us(static.Op("get").P99), us(adaptive.Op("get").P99))
	fmt.Println("\nThe adaptive run serves the identical trace; only page placement moved.")
	fmt.Println("Every number above is virtual-time exact and replays bit-identically.")
}
