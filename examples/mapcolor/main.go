// Command mapcolor runs the paper's Figure 5 experiment: a multithreaded
// branch-and-bound minimal-cost coloring of the 29 eastern-most US states
// with four weighted colors, compiled-Java style (object get/put
// primitives), on a four-node SISCI/SCI cluster — comparing the two Java
// consistency protocols.
//
// Run with:
//
//	go run ./examples/mapcolor [-nodes 4] [-threads 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"dsmpm2"
	"dsmpm2/internal/apps/mapcolor"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster nodes")
	threads := flag.Int("threads", 1, "application threads per node")
	flag.Parse()

	serial := mapcolor.SolveSerial()
	fmt.Printf("Minimal-cost map coloring: %d states, %d colors (serial optimum %d)\n",
		len(mapcolor.States), mapcolor.NumColors, serial)
	fmt.Printf("%d nodes x %d threads, SISCI/SCI\n\n", *nodes, *threads)
	fmt.Printf("%-10s %14s %12s %12s %12s\n",
		"protocol", "time(ms)", "gets+puts", "faults", "checks-miss")

	for _, proto := range []string{"java_ic", "java_pf"} {
		res, err := mapcolor.Run(mapcolor.Config{
			Nodes:          *nodes,
			ThreadsPerNode: *threads,
			Network:        dsmpm2.SISCISCI,
			Protocol:       proto,
			Seed:           7,
		})
		if err != nil {
			log.Fatalf("[%s] %v", proto, err)
		}
		if res.BestCost != serial {
			log.Fatalf("[%s] found %d, serial optimum is %d", proto, res.BestCost, serial)
		}
		st := res.Stats
		fmt.Printf("%-10s %14.2f %12d %12d %12d\n",
			proto, float64(res.Elapsed)/1e6, st.GetOps+st.PutOps,
			st.ReadFaults+st.WriteFaults, st.ObjFetches)
	}
	fmt.Println("\nAs in Figure 5: java_pf outperforms java_ic — the inline checks tax")
	fmt.Println("every access, while faults only occur on the rare remote accesses.")
}
