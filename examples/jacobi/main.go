// Command jacobi runs the SPLASH-2-style Jacobi stencil kernel (the
// application class Section 5 names for the paper's planned evaluation)
// across the consistency protocols, showing where home-based release
// consistency pays off against sequential consistency.
//
// Run with:
//
//	go run ./examples/jacobi [-n 16] [-iters 4] [-nodes 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"dsmpm2"
	"dsmpm2/internal/apps/jacobi"
)

func main() {
	n := flag.Int("n", 16, "grid dimension")
	iters := flag.Int("iters", 4, "Jacobi sweeps")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	flag.Parse()

	want := jacobi.SolveSerial(*n, *iters)
	fmt.Printf("Jacobi %dx%d, %d iterations, %d nodes, BIP/Myrinet (serial checksum %.4f)\n\n",
		*n, *n, *iters, *nodes, want)
	fmt.Printf("%-10s %14s %12s %12s %12s\n",
		"protocol", "time(ms)", "page xfers", "diffs", "diff bytes")

	for _, proto := range []string{"li_hudak", "erc_sw", "hbrc_mw"} {
		res, err := jacobi.Run(jacobi.Config{
			N:          *n,
			Iterations: *iters,
			Nodes:      *nodes,
			Network:    dsmpm2.BIPMyrinet,
			Protocol:   proto,
			Seed:       1,
		})
		if err != nil {
			log.Fatalf("[%s] %v", proto, err)
		}
		if math.Abs(res.Checksum-want) > 1e-9 {
			log.Fatalf("[%s] checksum %v, want %v", proto, res.Checksum, want)
		}
		fmt.Printf("%-10s %14.2f %12d %12d %12d\n",
			proto, float64(res.Elapsed)/1e6,
			res.Stats.PageSends, res.Stats.DiffsSent, res.Stats.DiffBytes)
	}
}
