package dsmpm2

import (
	"fmt"

	"dsmpm2/internal/core"
	"dsmpm2/internal/madeleine"
	"dsmpm2/internal/sim"
)

// Fault injection and recovery, re-exported from the internal layers. A
// FaultPlan is a declarative, seed-driven schedule of node crashes/restarts,
// link partitions/heals and message loss; injecting it into a System turns
// on the network fault layer and the DSM recovery manager, and replays of
// the same seed + plan are bit-identical.

type (
	// FaultPlan is a reproducible schedule of fault events; see
	// sim.FaultPlan. Event times are offsets from the InjectFaults call.
	FaultPlan = sim.FaultPlan
	// FaultEvent is one scheduled fault.
	FaultEvent = sim.FaultEvent
	// FaultKind enumerates fault event kinds.
	FaultKind = sim.FaultKind
	// PartitionPolicy selects queue-until-heal or drop semantics for
	// partitioned links.
	PartitionPolicy = madeleine.PartitionPolicy
	// FaultStats aggregates the network fault layer's counters.
	FaultStats = madeleine.FaultStats
	// RecoveryStats counts the DSM recovery manager's work.
	RecoveryStats = core.RecoveryStats
)

// Fault event kinds.
const (
	FaultNodeCrash     = sim.FaultNodeCrash
	FaultNodeRestart   = sim.FaultNodeRestart
	FaultLinkPartition = sim.FaultLinkPartition
	FaultLinkHeal      = sim.FaultLinkHeal
	FaultLinkLoss      = sim.FaultLinkLoss
)

// Partition policies.
const (
	// PartitionQueue holds messages on a partitioned link and delivers
	// them, FIFO, when it heals (reliable transport under a transient
	// partition). The default.
	PartitionQueue = madeleine.PartitionQueue
	// PartitionDrop discards messages sent over a partitioned link.
	PartitionDrop = madeleine.PartitionDrop
)

// NewFaultPlan returns an empty plan with the given loss-PRNG seed, to be
// populated with the Crash/Restart/Partition/Heal/Loss builder methods.
func NewFaultPlan(seed int64) *FaultPlan { return &FaultPlan{Seed: seed} }

// LoadFaultPlan reads a plan from a JSON file.
var LoadFaultPlan = sim.LoadFaultPlan

// GenerateMTBFPlan builds a crash/restart plan from an exponential failure
// model (mean time between failures, fixed repair time) over [0, horizon),
// sparing the protected nodes. Deterministic per seed.
var GenerateMTBFPlan = sim.GenerateMTBFPlan

// RecoveryTuning is the retry-timing half of fault injection, settable
// cluster-wide on Config.Recovery (FaultOptions overrides it field-by-field
// at injection time). All decisions it parameterizes are deterministic: the
// backoff is a pure function of the attempt number and the jitter comes from
// a private seeded PRNG, so tuned runs replay bit-identically.
type RecoveryTuning struct {
	// Timeout bounds blocking protocol waits in recovery mode; zero uses
	// core.DefaultRecoveryTimeout (5 ms virtual).
	Timeout Duration
	// Backoff scales the retry timeout exponentially across consecutive
	// retries of one protocol action (attempt k waits Timeout·Backoff^k);
	// values <= 1 keep the historical flat timeout.
	Backoff float64
	// RetryMax caps the backed-off timeout; zero means no cap.
	RetryMax Duration
	// Jitter adds a deterministic pseudo-random delay in [0, Jitter) to
	// every bounded wait, de-synchronizing retry storms; zero draws nothing.
	Jitter Duration
	// JitterSeed seeds the jitter PRNG (zero means 1).
	JitterSeed int64
}

// merged overlays the per-injection options over the cluster-wide tuning:
// any field set on opts wins.
func (r RecoveryTuning) merged(opts FaultOptions) RecoveryTuning {
	if opts.Timeout != 0 {
		r.Timeout = opts.Timeout
	}
	if opts.Backoff != 0 {
		r.Backoff = opts.Backoff
	}
	if opts.RetryMax != 0 {
		r.RetryMax = opts.RetryMax
	}
	if opts.Jitter != 0 {
		r.Jitter = opts.Jitter
	}
	if opts.JitterSeed != 0 {
		r.JitterSeed = opts.JitterSeed
	}
	return r
}

// FaultOptions tunes fault injection.
type FaultOptions struct {
	// Partition selects what happens on partitioned links (default:
	// PartitionQueue).
	Partition PartitionPolicy
	// Timeout bounds blocking protocol waits in recovery mode; zero uses
	// core.DefaultRecoveryTimeout (5 ms virtual).
	Timeout Duration
	// Backoff scales the retry timeout exponentially across consecutive
	// retries of one protocol action (attempt k waits Timeout·Backoff^k);
	// values <= 1 keep the historical flat timeout. See
	// core.RecoveryConfig.Backoff.
	Backoff float64
	// RetryMax caps the backed-off timeout; zero means no cap.
	RetryMax Duration
	// Jitter adds a deterministic pseudo-random delay in [0, Jitter) to
	// every bounded wait, de-synchronizing retry storms; zero draws nothing.
	Jitter Duration
	// JitterSeed seeds the jitter PRNG (zero means 1).
	JitterSeed int64
	// OnRestart runs in engine context after a crashed node's DSM state
	// has been rebuilt — the hook for respawning the node's workers. It
	// must not block (spawning threads is fine).
	OnRestart func(node int)
}

// enableFaultLayers switches on the network fault layer and the DSM recovery
// manager (idempotently), the shared half of both injection paths.
func (s *System) enableFaultLayers(seed int64, opts FaultOptions) error {
	if s.rt.Sharded() {
		// Crash recovery is single-loop machinery: death bookkeeping is
		// centralized, the flat barrier's participant takeover assumes one
		// calendar, and the combining-tree barrier (treebar.go) explicitly
		// routes around recovery. Refuse loudly rather than corrupt state.
		return fmt.Errorf("dsmpm2: fault injection requires Shards <= 1 (got %d shards); crash recovery assumes the single-loop kernel", s.rt.Shards())
	}
	if !s.rt.Network().FaultsEnabled() {
		s.rt.EnableFaults(seed, opts.Partition)
	}
	if !s.dsm.RecoveryEnabled() {
		tune := s.cfg.Recovery.merged(opts)
		s.dsm.EnableRecovery(core.RecoveryConfig{
			Timeout:    tune.Timeout,
			Backoff:    tune.Backoff,
			RetryMax:   tune.RetryMax,
			Jitter:     tune.Jitter,
			JitterSeed: tune.JitterSeed,
			OnRestart:  opts.OnRestart,
		})
	}
	return nil
}

// InjectFaults arms the system with a fault plan: the network fault layer
// and the DSM recovery manager switch on, and every plan event is scheduled
// at now + event.At. Call it at the point of the simulation the plan's
// clock should start from (typically after setup phases), and before the
// Run that should experience the faults.
//
// Recovery assumes fail-stop nodes and at least one survivor per page
// replica set; synchronization managers (lock homes, barrier manager node
// 0) must be protected nodes — crash them and their state dies for good.
//
// On a sharded machine (Config.Shards > 1) it returns an error instead of
// arming anything: crash recovery assumes the single-loop kernel.
func (s *System) InjectFaults(plan *FaultPlan, opts FaultOptions) error {
	if plan == nil {
		return nil // mirror sim.Engine.InjectFaults: a nil plan is a no-op
	}
	if err := s.enableFaultLayers(plan.Seed, opts); err != nil {
		return err
	}
	s.rt.Engine().InjectFaults(plan, s.applyFault)
	return nil
}

// InjectFaultsResumable is InjectFaults through a resumable cursor: instead
// of scheduling every plan event up front, only the next pending event is
// armed at a time, and an event whose time falls inside a drained safe point
// (between two Run chunks of a checkpointing application) parks and fires at
// the start of the next chunk instead of being swallowed by the drain. This
// is the injection mode checkpointable runs must use — it is bit-identical
// to InjectFaults for a single uninterrupted Run — because the cursor's
// position (unlike a closure queue) serializes into a Checkpoint and resumes.
func (s *System) InjectFaultsResumable(plan *FaultPlan, opts FaultOptions) error {
	if plan == nil {
		return nil
	}
	if err := s.enableFaultLayers(plan.Seed, opts); err != nil {
		return err
	}
	s.faultPlan = plan
	s.faultOpts = opts
	// Not armed here: System.Run arms before every phase, and an event queued
	// outside a Run would spoil the drained safe point a checkpoint needs.
	s.cursor = s.rt.Engine().NewFaultCursor(plan, s.applyFault)
	return nil
}

// applyFault routes one fault event to the layer that implements it.
func (s *System) applyFault(ev FaultEvent) {
	switch ev.Kind {
	case sim.FaultNodeCrash:
		s.dsm.CrashNode(ev.Node)
	case sim.FaultNodeRestart:
		s.dsm.RestartNode(ev.Node)
	case sim.FaultLinkPartition:
		s.rt.Network().PartitionLink(ev.From, ev.To)
	case sim.FaultLinkHeal:
		s.rt.Network().HealLink(ev.From, ev.To)
	case sim.FaultLinkLoss:
		s.rt.Network().SetLinkLoss(ev.From, ev.To, ev.DropRate, ev.DupRate)
	}
}

// FaultStats reports the network fault layer's counters (zero value when no
// plan was injected).
func (s *System) FaultStats() FaultStats { return s.rt.Network().FaultStats() }

// RecoveryStats reports the DSM recovery manager's counters (zero value
// when no plan was injected).
func (s *System) RecoveryStats() RecoveryStats { return s.dsm.RecoveryStats() }

// NodeDead reports whether node n is currently crashed.
func (s *System) NodeDead(n int) bool { return s.dsm.NodeDead(n) }

// BarrierGen reports the number of completed generations of a barrier;
// restart-aware applications use it with Thread.BarrierAs.
func (s *System) BarrierGen(id int) int { return s.dsm.BarrierGen(id) }

// BarrierAs is Thread.Barrier with an explicit participant identity and the
// participant's generation: arrivals become idempotent per generation, so a
// participant respawned after a crash re-arrives for the last generation it
// completed and takes over its dead predecessor's slot instead of
// over-counting. See core.DSM.BarrierAs.
func (t *Thread) BarrierAs(bar, participant, gen int) {
	t.span("barrier", func() { t.sys.dsm.BarrierAs(t.th, bar, participant, gen) })
}

// Flush commits this thread's unflushed writes by running the active
// protocols' release actions, with no barrier or lock RPC attached.
// Restart-aware applications flush before recording a checkpoint: the
// checkpoint must never claim work whose diffs would die with the node.
func (t *Thread) Flush() {
	t.span("flush", func() { t.sys.dsm.FlushRelease(t.th) })
}
