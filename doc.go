// Package dsmpm2 is a Go reproduction of DSM-PM2, the portable
// implementation platform for multithreaded DSM consistency protocols of
// Antoniu and Bougé (IPDPS/HIPS 2001, INRIA RR-4108).
//
// DSM-PM2 provides the illusion of a common address space shared by all
// threads of a distributed multithreaded application, and — its real point —
// a generic toolbox on which consistency protocols are built out of 8 small
// routines (read/write fault handlers, read/write servers, invalidate and
// receive-page servers, lock acquire/release actions). The paper's six
// protocols ship built in, spanning sequential consistency (li_hudak,
// migrate_thread), release consistency (erc_sw, hbrc_mw) and Java
// consistency (java_ic, java_pf); this reproduction adds the hybrid and
// adaptive protocols the paper sketches in Section 2.3, the fixed and
// centralized Li & Hudak manager variants its page manager was designed for
// (li_fixed, li_central), and Midway-style entry consistency (entry_mw).
//
// The original system runs on Linux clusters and detects shared accesses
// with mprotect; this reproduction runs the whole platform — PM2 threads,
// the Madeleine communication library, RPC, iso-address allocation, thread
// migration and the DSM core — on a deterministic discrete-event simulator
// whose network profiles are calibrated to the paper's measured latencies
// (BIP/Myrinet, TCP/Myrinet, TCP/Fast Ethernet, SISCI/SCI). See DESIGN.md
// for the substitution argument and EXPERIMENTS.md for paper-vs-measured
// results.
//
// Beyond the paper's uniform clusters, the communication stack resolves
// costs per (src,dst) link through a Topology: UniformTopology is the
// calibrated single-profile special case, HierarchicalTopology models
// multi-cluster machines (a fast intra-cluster profile, a slow backbone),
// and LinkMatrixTopology assigns arbitrary per-pair profiles for asymmetric
// scenarios. Config.LinkContention additionally serializes concurrent
// transfers FIFO per directed link, so saturated links exhibit queueing
// delay. Fault records attribute themselves to the link class their page
// transfer crossed (FaultTiming.Link, TimingLog.ByLink).
//
// Placement can adapt online: Config.AdaptiveHomes enables the
// sharing-pattern profiler, which counts faults, fetches and diffs per
// (page, node), folds them into epochs at cluster-wide barriers, classifies
// each page (private, read-shared, producer-consumer, migratory,
// falsely-shared), and re-homes pages onto their stable dominant writers via
// a handshake whose metadata update rides the barrier grant. The adaptive
// protocol consumes the same classifier to pick thread migration vs page
// policy per page. Stats.HomeMigrations/RemoteFetches/MisplacedFetches and
// System.ProfileEpochs expose the accounting; `dsmbench -exp adapt [-json]`
// runs the static-vs-adaptive placement experiment and writes
// BENCH_adapt.json. See DESIGN.md ("Access profiling & home migration").
//
// Serving-class workloads get per-operation latency accounting:
// System.OpHist(kind) registers a fixed-grid histogram over virtual-time
// durations (HDR-style log-spaced buckets, allocation-free Record,
// bucket-wise Merge across nodes), whose quantiles are upper bounds on a
// fixed seed-independent grid — deterministic, snapshot-safe, and
// bit-identical across replays. The internal kvstore app (a hash table
// sharded one-bucket-per-page under per-bucket entry_mw locks, driven by an
// open-loop Zipf trace with hot-key churn) exercises them end to end;
// `dsmbench -exp serve [-json]` runs its static-vs-adaptive placement
// experiment, asserts the adaptive p99 wins, and writes BENCH_serve.json.
// See DESIGN.md ("Serving workloads") and examples/kvstore.
//
// Config.Shards > 1 runs the event loop — and the full DSM stack above it —
// on that many conservatively-synchronized parallel shards, one per
// topology cluster (contiguous node blocks otherwise): the page directory
// is range-partitioned by iso-address slice, copysets are run-length
// interval sets, and machine-wide barriers combine through a fan-in tree of
// per-shard leaders so the backbone of a hierarchical machine carries
// O(log shards) envelopes per generation instead of O(nodes). A sharded run
// is deterministic for its shard count (replays are bit-identical whatever
// the host interleaving) and application answers match the single-loop run;
// Shards <= 1 replays the historical single-loop engine bit for bit. Fault
// injection is the one feature that requires the single-loop kernel. See
// DESIGN.md ("Sharded protocol layer").
//
// The platform also injects failures: a FaultPlan is a declarative,
// seed-driven schedule of node crashes/restarts, link partitions/heals and
// message loss, applied through System.InjectFaults. The network drops or
// queues faulted traffic, the DSM recovery manager re-homes a dead node's
// pages from the freshest surviving replica and unwedges in-flight protocol
// actions, and crash-tolerant barriers (Thread.BarrierAs) let restarted
// workers rejoin mid-computation. Replays of the same seed and plan are
// bit-identical; see examples/faults and DESIGN.md ("Fault model &
// recovery"). Recovery-mode retry timing is tunable via Config.Recovery
// (exponential backoff with seeded jitter; the zero value is the historical
// flat schedule).
//
// Because the replay is deterministic, the whole simulation state at a
// drained safe point is a value: System.Checkpoint serializes it (versioned,
// self-describing, content-hashed) and Restore rebuilds a System that
// finishes bit-identically to the unbroken run. Crash-restart experiments
// warm-start restarted nodes from the per-unit checkpoint registry
// (DSM RecordCheckpoint/LastCheckpoint), benchmarks resume mid-run
// snapshots, and `dsmbench -exp bisect` binary-searches the first safe point
// whose fingerprint diverges from a reference ledger. See DESIGN.md
// ("Checkpoint/restore").
//
// Determinism also powers the what-if auto-tuner (internal/tune): record one
// run of a workload, re-simulate the full {protocol x topology x placement x
// comm} grid as parallel host-level runs (`dsmbench -exp tune [-json]`,
// cached by fingerprint, ranked by virtual elapsed), and feed the winning
// cell back as Config.TunedPrior — the adaptive protocol's cold-start
// evidence. See DESIGN.md ("Protocol auto-tuner").
//
// # Quick start
//
// Mirroring the paper's Figure 2 (selecting a built-in protocol and sharing
// an integer):
//
//	sys, _ := dsmpm2.New(dsmpm2.Config{Nodes: 4, Protocol: "li_hudak"})
//	x := sys.MustMalloc(0, 8, nil)
//	lock := sys.NewLock(0)
//	for n := 0; n < 4; n++ {
//		sys.Spawn(n, "worker", func(t *dsmpm2.Thread) {
//			t.Acquire(lock)
//			t.WriteUint64(x, t.ReadUint64(x)+1)
//			t.Release(lock)
//		})
//	}
//	sys.Run()
package dsmpm2
