package dsmpm2_test

import (
	"strings"
	"testing"

	"dsmpm2"
	"dsmpm2/internal/core"
	"dsmpm2/internal/memory"
)

func TestNewDefaults(t *testing.T) {
	sys, err := dsmpm2.New(dsmpm2.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Nodes() != 2 {
		t.Fatalf("default nodes = %d, want 2", sys.Nodes())
	}
	if sys.Network() != dsmpm2.BIPMyrinet {
		t.Fatalf("default network = %v", sys.Network().Name)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := dsmpm2.New(dsmpm2.Config{Nodes: -3}); err == nil {
		t.Fatal("negative node count accepted")
	}
	if _, err := dsmpm2.New(dsmpm2.Config{Protocol: "quantum"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestProtocolNamesComplete(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 1})
	names := strings.Join(sys.ProtocolNames(), ",")
	for _, want := range []string{"li_hudak", "migrate_thread", "erc_sw", "hbrc_mw", "java_ic", "java_pf", "hybrid", "adaptive"} {
		if !strings.Contains(names, want) {
			t.Errorf("protocol %q missing from registry (%s)", want, names)
		}
	}
}

func TestFigure2Workflow(t *testing.T) {
	// The paper's Figure 2 program: default protocol, shared int, x++.
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 4, Protocol: "li_hudak"})
	x := sys.MustMalloc(0, 8, nil)
	lock := sys.NewLock(0)
	sys.Spawn(0, "init", func(t *dsmpm2.Thread) { t.WriteUint64(x, 34) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		sys.Spawn(n, "w", func(th *dsmpm2.Thread) {
			th.Acquire(lock)
			th.WriteUint64(x, th.ReadUint64(x)+1)
			th.Release(lock)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	sys.Spawn(0, "r", func(th *dsmpm2.Thread) { got = th.ReadUint64(x) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 38 {
		t.Fatalf("x = %d, want 38", got)
	}
}

func TestUserDefinedProtocol(t *testing.T) {
	// dsm_create_protocol: build a protocol from hooks and use it like a
	// built-in (single-node grant-on-fault protocol).
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 1})
	d := sys.DSM()
	id := sys.CreateProtocol(&core.Hooks{
		ProtoName: "grant_all",
		OnReadFault: func(f *core.Fault) {
			f.DSM.Space(f.Node).SetAccess(f.Page, memory.ReadOnly)
		},
		OnWriteFault: func(f *core.Fault) {
			f.DSM.Space(f.Node).SetAccess(f.Page, memory.ReadWrite)
		},
	})
	base := sys.MustMalloc(0, 8, &dsmpm2.Attr{Protocol: id, Home: 0})
	pg := d.Space(0).PageOf(base)
	d.Space(0).Drop(pg)
	var got uint64
	sys.Spawn(0, "w", func(th *dsmpm2.Thread) {
		th.WriteUint64(base, 5)
		got = th.ReadUint64(base)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("user protocol round trip = %d", got)
	}
}

func TestDynamicProtocolSelection(t *testing.T) {
	// Section 2.3: select among protocols at run time, no recompilation.
	for _, name := range []string{"li_hudak", "hbrc_mw"} {
		sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2})
		if err := sys.SetDefaultProtocol(name); err != nil {
			t.Fatal(err)
		}
		x := sys.MustMalloc(0, 8, nil)
		lock := sys.NewLock(0)
		sys.Spawn(1, "w", func(th *dsmpm2.Thread) {
			th.Acquire(lock)
			th.WriteUint64(x, 7)
			th.Release(lock)
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		var got uint64
		sys.Spawn(0, "r", func(th *dsmpm2.Thread) {
			th.Acquire(lock)
			got = th.ReadUint64(x)
			th.Release(lock)
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 7 {
			t.Fatalf("[%s] got %d", name, got)
		}
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Trace: true})
	x := sys.MustMalloc(1, 8, nil)
	lock := sys.NewLock(0)
	sys.Spawn(0, "w", func(th *dsmpm2.Thread) {
		th.Acquire(lock)
		th.WriteUint64(x, 1)
		th.Compute(5 * dsmpm2.Microsecond)
		th.Release(lock)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	lg := sys.Trace()
	if lg == nil || lg.Len() == 0 {
		t.Fatal("no spans recorded with Trace enabled")
	}
	names := map[string]bool{}
	for _, st := range lg.Breakdown() {
		names[st.Name] = true
	}
	for _, want := range []string{"lock_acquire", "dsm_write", "compute", "lock_release"} {
		if !names[want] {
			t.Errorf("span %q missing from breakdown", want)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 1})
	if sys.Trace() != nil {
		t.Fatal("trace log present without Config.Trace")
	}
}

func TestStackSizeAffectsFaultCost(t *testing.T) {
	// Section 4's caveat, through the public API.
	cost := func(stack int) dsmpm2.Duration {
		sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Protocol: "migrate_thread"})
		data := sys.MustMalloc(1, 8, nil)
		var took dsmpm2.Duration
		sys.SpawnStack(0, "w", stack, func(th *dsmpm2.Thread) {
			start := th.Now()
			th.WriteUint64(data, 1)
			took = th.Now().Sub(start)
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	if cost(64<<10) <= cost(1<<10) {
		t.Fatal("64KiB-stack fault not slower than 1KiB-stack fault")
	}
}

func TestObjectAPI(t *testing.T) {
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Protocol: "java_pf"})
	pid, _ := sys.Protocol("java_pf")
	obj := sys.MustNewObject(1, 3, pid)
	mon := sys.NewLock(0)
	sys.Spawn(1, "w", func(th *dsmpm2.Thread) {
		th.Acquire(mon)
		th.PutField(obj, 2, 99)
		th.Release(mon)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	sys.Spawn(0, "r", func(th *dsmpm2.Thread) {
		th.Acquire(mon)
		got = th.GetField(obj, 2)
		th.Release(mon)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("object field = %d, want 99", got)
	}
}
