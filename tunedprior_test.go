package dsmpm2_test

import (
	"testing"

	"dsmpm2"
)

// TestTunedPriorFillsConfig: a what-if sweep's recommendation fed back via
// Config.TunedPrior must configure the platform like the winning cell —
// protocol default, unbatched comm, adaptive placement — and install the
// page-policy prior for the adaptive protocol. Explicit fields still win.
func TestTunedPriorFillsConfig(t *testing.T) {
	prior := &dsmpm2.TunedPrior{
		Protocol: "hbrc_mw", Placement: "adaptive", Comm: "unbatched", Workload: "jacobi",
	}
	sys := dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Seed: 1, TunedPrior: prior})
	d := sys.DSM()
	if want, _ := sys.Protocol("hbrc_mw"); d.DefaultProtocol() != want {
		t.Errorf("default protocol %v, want hbrc_mw (%v)", d.DefaultProtocol(), want)
	}
	if d.BatchingEnabled() {
		t.Error("prior's unbatched comm was not applied")
	}
	if !d.ProfilerEnabled() {
		t.Error("prior's adaptive placement did not enable the profiler")
	}
	if !d.TunedPagePrior() {
		t.Error("page-policy prior not installed")
	}

	// An explicit protocol beats the prior's.
	sys = dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Seed: 1, Protocol: "erc_sw", TunedPrior: prior})
	if want, _ := sys.Protocol("erc_sw"); sys.DSM().DefaultProtocol() != want {
		t.Errorf("explicit protocol overridden by the prior")
	}

	// No prior: nothing installed.
	sys = dsmpm2.MustNew(dsmpm2.Config{Nodes: 2, Seed: 1})
	if sys.DSM().TunedPagePrior() {
		t.Error("page-policy prior installed without a TunedPrior")
	}
}
